//! Lowering a machine-designed format to executable, threaded CPU loops.
//!
//! A [`NativeKernel`] is built from the same inputs as the simulator kernel —
//! the Designer's [`MatrixMetadataSet`] and the extracted [`MachineFormat`] —
//! but instead of charging modelled costs it runs the SpMV:
//!
//! * **row-partition loops** for `BMT_ROW_BLOCK` / `BMT_COL_BLOCK` designs:
//!   contiguous local-row ranges are split across workers, each worker
//!   accumulates one dot product per row;
//! * **nnz-partition loops** for `BMT_NNZ_BLOCK` designs: the design's
//!   fixed-size non-zero chunks are grouped across workers, each worker walks
//!   its span emitting one partial per row segment (the merge/CSR5 layout);
//!   boundary rows are merged by accumulation during the scatter phase;
//! * **closed-form index functions**: an index array that Model-Driven Format
//!   Compression replaced with a fitted model is *computed*, not loaded —
//!   [`IndexFn`] dispatches identity / affine forms without touching the
//!   original array at all.
//!
//! Workers communicate only through their return values (per-range partial
//! sums); the serial scatter applies the `origin_rows` permutation and merges
//! rows shared between workers or `COL_DIV` sibling partitions by `+=`.
//!
//! Execution is **pooled by default**: [`NativeKernel::run`] and
//! [`NativeKernel::run_into`] dispatch onto the process-wide persistent
//! [`Pool`] (or an explicit pool via the `_with_pool` variants), so
//! repeated runs never pay a thread spawn.  Row-partition work
//! is split at **nnz-balanced** row boundaries cached at build time, so
//! skewed (power-law) matrices keep their workers evenly loaded.  The legacy
//! spawn-per-call path survives as [`NativeKernel::run_spawning`] for
//! pool-vs-spawn comparisons.

use crate::simd::{self, ResolvedSimd, SimdMode};
use crate::specialized::{
    IndexKind, KernelShape, PartitionArgs, PartitionKind, PrefetchClass, ScatterArgs, SimdClass,
    SpecExec, SpecializeMode, SpecializedPartition,
};
use alpha_codegen::compress::CompressedArray;
use alpha_codegen::{CompressionModel, FormatArray, MachineFormat};
use alpha_graph::{Mapping, MatrixMetadataSet, SimdLaneMapping};
use alpha_matrix::{CsrMatrix, Scalar};
use alpha_parallel::{Executor, Pool};
use alpha_telemetry::Histogram;
use std::time::Instant;

/// Non-zeros one worker should own, at minimum, before another worker is
/// worth **spawning**.  The spawn-per-call path creates fresh threads every
/// run, and a thread spawn costs tens of microseconds — more than an entire
/// sub-100µs kernel.  Automatic thread selection (`threads == 0`) therefore
/// scales the worker count with the matrix instead of always using every
/// core; explicit counts are honoured verbatim.
pub const MIN_NNZ_PER_WORKER: usize = 262_144;

/// Non-zeros one worker should own, at minimum, before another **pooled**
/// worker is worth waking.  A persistent [`Pool`] dispatches a job in a
/// mutex/condvar round-trip (single-digit microseconds) instead of a thread
/// spawn, so parallelism pays off more than an order of magnitude earlier
/// than on the spawn path — this is what un-serialises the small/medium
/// matrices `MIN_NNZ_PER_WORKER` used to force onto one core.
pub const MIN_NNZ_PER_WORKER_POOLED: usize = 16_384;

/// Resolves a requested thread count for the **spawn-per-call** path: `0`
/// means "automatic" — one worker per available core, but never more than
/// [`MIN_NNZ_PER_WORKER`] would justify for `nnz` non-zeros.  Explicit
/// counts are honoured verbatim.
pub fn effective_workers(threads: usize, nnz: usize) -> usize {
    if threads == 0 {
        alpha_parallel::default_threads()
            .min(nnz.div_ceil(MIN_NNZ_PER_WORKER))
            .max(1)
    } else {
        threads
    }
}

/// Resolves a requested thread count for **pooled** execution: `0` means
/// one worker per available core, but never more than
/// [`MIN_NNZ_PER_WORKER_POOLED`] would justify for `nnz` non-zeros.
/// Explicit counts are honoured verbatim.
pub fn effective_workers_pooled(threads: usize, nnz: usize) -> usize {
    effective_workers_pooled_for(threads, nnz, 1)
}

/// Kernel-aware variant of [`effective_workers_pooled`]: a vectorized kernel
/// retires `lanes` non-zeros per step, so it finishes a fixed chunk of work
/// roughly `lanes` times sooner and the break-even point for waking another
/// pooled worker shifts out by the same factor.  The threshold therefore
/// scales with the kernel's lane width instead of staying a global constant.
pub fn effective_workers_pooled_for(threads: usize, nnz: usize, lanes: usize) -> usize {
    if threads == 0 {
        let per_worker = MIN_NNZ_PER_WORKER_POOLED.saturating_mul(lanes.max(1));
        alpha_parallel::default_threads()
            .min(nnz.div_ceil(per_worker))
            .max(1)
    } else {
        threads
    }
}

/// A format index array as the native kernel reads it: either a real array
/// lookup or the closed-form function Model-Driven Format Compression fitted
/// (in which case no array exists in memory at all).
#[derive(Debug, Clone)]
pub enum IndexFn {
    /// `f(i) = i` — the compressed identity permutation.
    Identity,
    /// `f(i) = base + slope * i` — a fitted linear model with no exceptions.
    Affine {
        /// Value at index 0.
        base: i64,
        /// Increment per index.
        slope: i64,
    },
    /// Any other fitted model (step, periodic, or one with patched
    /// exceptions); still computed, not loaded.
    Model(CompressedArray),
    /// The raw array — compression did not apply, the loads are real.
    Table(Vec<u32>),
}

impl IndexFn {
    /// Lowers a format array into its access function.
    pub fn from_array(array: &FormatArray) -> IndexFn {
        match &array.compressed {
            Some(c) if c.exceptions.is_empty() => match c.model {
                CompressionModel::Linear { base: 0, slope: 1 } => IndexFn::Identity,
                CompressionModel::Linear { base, slope } => IndexFn::Affine { base, slope },
                _ => IndexFn::Model(c.clone()),
            },
            Some(c) => IndexFn::Model(c.clone()),
            None => IndexFn::Table(array.data.clone()),
        }
    }

    /// Reads entry `i`.
    ///
    /// An affine map that computes a negative value is a corrupt design, not
    /// index 0: kernel builds reject it up front with
    /// [`KernelBuildError::NegativeIndex`], and this accessor only debug-asserts
    /// the invariant instead of silently clamping.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            IndexFn::Identity => i as u32,
            IndexFn::Affine { base, slope } => {
                let v = base + slope * i as i64;
                debug_assert!(
                    v >= 0,
                    "affine index map produced negative index f({i}) = {v}; \
                     corrupt designs must be rejected at kernel build"
                );
                v as u32
            }
            IndexFn::Model(c) => c.evaluate(i),
            IndexFn::Table(data) => data[i],
        }
    }

    /// Validates that an affine map stays non-negative over `[0, domain)` —
    /// the build-time guard behind the debug assertion in [`IndexFn::get`].
    /// Non-affine kinds are vacuously valid (models reproduce the original
    /// `u32` array; tables and identity cannot go negative).
    fn validate_domain(
        &self,
        domain: usize,
        partition: usize,
        array: &'static str,
    ) -> Result<(), KernelBuildError> {
        if let IndexFn::Affine { base, slope } = self {
            if domain == 0 {
                return Ok(());
            }
            let at_start = *base;
            let at_end = base + slope * (domain as i64 - 1);
            let (index, value) = if at_start <= at_end {
                (0, at_start)
            } else {
                (domain - 1, at_end)
            };
            if value < 0 {
                return Err(KernelBuildError::NegativeIndex {
                    partition,
                    array,
                    index,
                    value,
                });
            }
        }
        Ok(())
    }

    /// True when the array was eliminated — reads are computed, not loaded.
    pub fn is_closed_form(&self) -> bool {
        !matches!(self, IndexFn::Table(_))
    }

    /// When this map is `f(i) = base + i` (no reordering, only an offset),
    /// returns `base`: consumers can then address a contiguous output range
    /// directly instead of scattering through the map.
    pub fn contiguous_base(&self) -> Option<usize> {
        match self {
            IndexFn::Identity => Some(0),
            IndexFn::Affine { base, slope: 1 } if *base >= 0 => Some(*base as usize),
            _ => None,
        }
    }
}

/// A design that cannot be lowered into a valid native kernel.  These are
/// build-time rejections of *corrupt* inputs — a well-formed design from the
/// generator never triggers them — surfaced as typed errors so the evaluator
/// can mark the candidate infeasible instead of executing garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelBuildError {
    /// Metadata and format describe different partition counts.
    PartitionMismatch {
        /// Partitions in the designed metadata.
        metadata: usize,
        /// Partitions in the extracted format.
        format: usize,
    },
    /// An affine index map computes a negative index somewhere in its
    /// domain — a corrupt compression model, not a request for index 0.
    NegativeIndex {
        /// Partition the corrupt array belongs to.
        partition: usize,
        /// Which index array is corrupt.
        array: &'static str,
        /// First domain position where the map goes negative.
        index: usize,
        /// The negative value the map computes there.
        value: i64,
    },
}

impl std::fmt::Display for KernelBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelBuildError::PartitionMismatch { metadata, format } => write!(
                f,
                "metadata describes {metadata} partition(s) but the format has {format}"
            ),
            KernelBuildError::NegativeIndex {
                partition,
                array,
                index,
                value,
            } => write!(
                f,
                "partition {partition}: affine {array} map computes negative index \
                 f({index}) = {value} — corrupt design"
            ),
        }
    }
}

impl std::error::Error for KernelBuildError {}

/// How one partition's work is split over threads.
#[derive(Debug, Clone)]
enum ExecPath {
    /// Row-partition loop (`BMT_ROW_BLOCK` / `BMT_COL_BLOCK` designs).
    Rows,
    /// Nnz-partition loop (`BMT_NNZ_BLOCK` designs).
    Nnz {
        /// Non-zeros per design chunk (workers own groups of whole chunks).
        nnz_per_thread: usize,
        /// First row of each chunk (`bmt_row_starts`, possibly closed-form).
        row_starts: IndexFn,
    },
}

/// Row boundaries (length `workers + 1`, first entry 0, last entry `rows`)
/// splitting the rows of a partition so every piece owns ≈
/// `total_nnz / workers` non-zeros.  Computed from the CSR prefix sums: the
/// boundary for worker `w` is the first row whose cumulative non-zero count
/// reaches `w / workers` of the total.
fn balanced_row_cuts(offsets: &[u32], workers: usize) -> Vec<usize> {
    let rows = offsets.len().saturating_sub(1);
    let workers = workers.clamp(1, rows.max(1));
    let total = offsets.last().copied().unwrap_or(0) as usize;
    let mut cuts = Vec::with_capacity(workers + 1);
    cuts.push(0);
    for w in 1..workers {
        let target = (total * w) / workers;
        // First row boundary at or above the target...
        let above = offsets.partition_point(|&o| (o as usize) < target);
        // ...but the boundary just below may sit closer (rows are atomic, so
        // the best reachable split is whichever side of the target is
        // nearer).
        let cut = if above > 0
            && target - offsets[above - 1] as usize
                <= offsets.get(above).map_or(usize::MAX, |&o| o as usize) - target
        {
            above - 1
        } else {
            above
        };
        cuts.push(cut.clamp(*cuts.last().expect("cuts start at 0"), rows));
    }
    cuts.push(rows);
    cuts
}

/// Nnz-balanced row boundaries for every worker count up to the host's core
/// count, computed **once** from the partition's prefix-sum row offsets at
/// kernel build time.
///
/// Equal-*row* splitting (the old `split_mut` scheme) serialises skewed
/// matrices — a power-law partition puts most of its non-zeros in a few
/// rows, so one worker owns almost all the work while the rest finish
/// instantly and wait.  Splitting at equal-*nnz* boundaries keeps per-worker
/// work even regardless of the row-length distribution; caching the
/// boundaries keeps the binary searches off the per-run hot path.
#[derive(Debug, Clone)]
struct BalancedRowCuts {
    /// `per_count[w - 1]` holds the boundaries for `w` workers.
    per_count: Vec<Vec<usize>>,
}

impl BalancedRowCuts {
    fn build(offsets: &[u32]) -> Self {
        let max_workers = alpha_parallel::default_threads().max(1);
        BalancedRowCuts {
            per_count: (1..=max_workers)
                .map(|workers| balanced_row_cuts(offsets, workers))
                .collect(),
        }
    }

    /// The cached boundaries for `workers`, when within the precomputed
    /// range (worker counts above the core count fall back to an on-demand
    /// computation at the call site).
    fn get(&self, workers: usize) -> Option<&[usize]> {
        if workers == 0 || workers > self.per_count.len() {
            return None;
        }
        Some(&self.per_count[workers - 1])
    }
}

#[derive(Debug, Clone)]
struct NativePartition {
    /// The partition's permuted sub-matrix (value and column-index streams).
    matrix: CsrMatrix,
    /// Column offset of a `COL_DIV` branch in the original matrix.
    col_offset: usize,
    /// Local row → original row (the `origin_rows` array, often closed-form).
    origin: IndexFn,
    /// Row addressing (the `row_offsets` array, closed-form for regular
    /// matrices whose rows all have the same length).
    row_offsets: IndexFn,
    path: ExecPath,
    /// Build-time nnz-balanced row boundaries (row-partition loops only).
    row_cuts: Option<BalancedRowCuts>,
    /// Model row bounds materialised into a table for the specialized path
    /// (rows + 1 entries); `None` unless the partition specializes with
    /// [`IndexFn::Model`] bounds.  The interpreted path keeps evaluating the
    /// closed-form model.
    spec_bounds: Option<Vec<u32>>,
    /// Model origin map materialised for the specialized scatter; same
    /// policy as `spec_bounds`.
    spec_origin: Option<Vec<u32>>,
    /// Vectorization decision resolved from the design's `SimdPlan`, the
    /// build [`SimdMode`] and the host's feature probe.
    simd: ResolvedSimd,
    /// This partition's coordinates in the shape lattice (computed even when
    /// the partition executes interpreted — it names the shape that missed).
    shape: KernelShape,
    /// Pre-resolved monomorphized library entry; `None` runs the interpreted
    /// executor (library miss, env override, or a forced interpreted twin).
    spec: Option<SpecializedPartition>,
}

impl NativePartition {
    /// The runtime arguments of this partition's specialized loops,
    /// borrowing the streams for one execution.
    fn args<'a>(&'a self, x: &'a [Scalar]) -> PartitionArgs<'a> {
        let (bounds_table, bounds_base, bounds_slope): (&[u32], i64, i64) = match &self.row_offsets
        {
            IndexFn::Table(table) => (table, 0, 0),
            IndexFn::Identity => (&[], 0, 1),
            IndexFn::Affine { base, slope } => (&[], *base, *slope),
            // Model bounds run the table instantiation over the build-time
            // materialisation (empty only on never-specialized partitions,
            // where these fields are unread).
            IndexFn::Model(_) => (self.spec_bounds.as_deref().unwrap_or(&[]), 0, 0),
        };
        PartitionArgs {
            values: self.matrix.values(),
            col_indices: self.matrix.col_indices(),
            x,
            col_offset: self.col_offset,
            bounds_table,
            bounds_base,
            bounds_slope,
            prefetch: self.simd.prefetch,
        }
    }

    /// The runtime arguments of this partition's specialized scatter.
    fn scatter_args(&self) -> ScatterArgs<'_> {
        match &self.origin {
            IndexFn::Table(table) => ScatterArgs {
                table,
                base: 0,
                slope: 0,
            },
            IndexFn::Identity => ScatterArgs {
                table: &[],
                base: 0,
                slope: 1,
            },
            IndexFn::Affine { base, slope } => ScatterArgs {
                table: &[],
                base: *base,
                slope: *slope,
            },
            // Model origins scatter through the build-time materialisation
            // (empty only on never-specialized partitions, where the
            // scatter is unread).
            IndexFn::Model(_) => ScatterArgs {
                table: self.spec_origin.as_deref().unwrap_or(&[]),
                base: 0,
                slope: 0,
            },
        }
    }
}

/// A machine-designed SpMV program lowered to native threaded CPU loops.
pub struct NativeKernel {
    partitions: Vec<NativePartition>,
    rows: usize,
    cols: usize,
    nnz: usize,
    format_bytes: usize,
    name: String,
    /// Widest lane count across partitions (1 = fully scalar); feeds the
    /// lane-aware pooled worker threshold.
    max_lanes: usize,
    /// `cpu_kernel_run_us{simd=..., path=...}` — the run-latency histogram,
    /// resolved **once** at build so the hot path pays two clock reads and a
    /// few relaxed atomics.  `None` on a [`NativeKernel::without_telemetry`]
    /// twin (the overhead-measurement baseline).
    run_hist: Option<Histogram>,
}

impl NativeKernel {
    /// Lowers the designed metadata plus extracted format into executable
    /// loops — the same two inputs the simulator kernel is built from.
    /// Vectorization follows the design's `SimdPlan` and the host probe
    /// ([`SimdMode::Auto`]); use [`NativeKernel::with_simd_mode`] to force
    /// scalar execution.  Panics on corrupt inputs — use
    /// [`NativeKernel::try_new`] where a typed rejection is wanted.
    pub fn new(metadata: &MatrixMetadataSet, format: &MachineFormat) -> Self {
        Self::with_modes(metadata, format, SimdMode::Auto, SpecializeMode::Auto)
    }

    /// [`NativeKernel::new`], rejecting corrupt designs with a typed
    /// [`KernelBuildError`] instead of panicking.
    pub fn try_new(
        metadata: &MatrixMetadataSet,
        format: &MachineFormat,
    ) -> Result<Self, KernelBuildError> {
        Self::try_with_modes(metadata, format, SimdMode::Auto, SpecializeMode::Auto)
    }

    /// [`NativeKernel::new`] with an explicit [`SimdMode`] — benches build a
    /// [`SimdMode::ForceScalar`] twin of a vectorized kernel this way to
    /// measure the SIMD win without mutating the process environment.
    pub fn with_simd_mode(
        metadata: &MatrixMetadataSet,
        format: &MachineFormat,
        mode: SimdMode,
    ) -> Self {
        Self::with_modes(metadata, format, mode, SpecializeMode::Auto)
    }

    /// [`NativeKernel::new`] with explicit [`SimdMode`] and
    /// [`SpecializeMode`] — benches build a
    /// [`SpecializeMode::ForceInterpreted`] twin of a specialized kernel
    /// this way to measure the interpreter overhead the library removes.
    pub fn with_modes(
        metadata: &MatrixMetadataSet,
        format: &MachineFormat,
        simd_mode: SimdMode,
        spec_mode: SpecializeMode,
    ) -> Self {
        Self::try_with_modes(metadata, format, simd_mode, spec_mode)
            .expect("designs from the generator lower to valid kernels")
    }

    /// The complete lowering: resolves vectorization, validates every index
    /// map's domain, computes each partition's [`KernelShape`] and matches
    /// it against the monomorphized library (library misses and env-forced
    /// builds fall back to the interpreted executor, counted as
    /// `cpu_kernel_fallback_total`).
    pub fn try_with_modes(
        metadata: &MatrixMetadataSet,
        format: &MachineFormat,
        simd_mode: SimdMode,
        spec_mode: SpecializeMode,
    ) -> Result<Self, KernelBuildError> {
        if metadata.partitions.len() != format.partitions.len() {
            return Err(KernelBuildError::PartitionMismatch {
                metadata: metadata.partitions.len(),
                format: format.partitions.len(),
            });
        }
        let mut partitions = Vec::with_capacity(metadata.partitions.len());
        for (index, (plan, pf)) in metadata
            .partitions
            .iter()
            .zip(&format.partitions)
            .enumerate()
        {
            let lookup = |name: &str| {
                pf.array(name)
                    .map(IndexFn::from_array)
                    .unwrap_or(IndexFn::Identity)
            };
            let rows = plan.matrix.rows();
            let origin = lookup("origin_rows");
            let row_offsets = lookup("row_offsets");
            // Corrupt affine maps (negative computed indices) are rejected
            // here, once, so the hot loops can drop the silent clamp.
            origin.validate_domain(rows, index, "origin_rows")?;
            row_offsets.validate_domain(rows + 1, index, "row_offsets")?;
            let path = match plan.mapping {
                Mapping::RowPerThread { .. } | Mapping::VectorPerRow { .. } => ExecPath::Rows,
                Mapping::NnzSplit { nnz_per_thread } => {
                    let nnz_per_thread = nnz_per_thread.max(1);
                    let row_starts = lookup("bmt_row_starts");
                    let chunks = plan.matrix.nnz().div_ceil(nnz_per_thread).max(1);
                    row_starts.validate_domain(chunks, index, "bmt_row_starts")?;
                    ExecPath::Nnz {
                        nnz_per_thread,
                        row_starts,
                    }
                }
            };
            // Row-partition loops split work at nnz-balanced row
            // boundaries; the boundaries come from the sub-matrix's
            // prefix sums and are cached here, once, at build time.
            let row_cuts = match path {
                ExecPath::Rows => Some(BalancedRowCuts::build(plan.matrix.row_offsets())),
                ExecPath::Nnz { .. } => None,
            };
            let simd = ResolvedSimd::resolve(&plan.simd, simd_mode);
            // The partition's coordinates in the shape lattice, then the
            // library lookup: a hit pre-resolves every inner-loop decision
            // into monomorphized function pointers; a miss (or a forced
            // interpreted build) keeps the interpreted executor.
            let rows_path = matches!(path, ExecPath::Rows);
            let bounds = match &path {
                ExecPath::Rows => IndexKind::of(&row_offsets),
                ExecPath::Nnz { row_starts, .. } => IndexKind::of(row_starts),
            };
            let simd_class = SimdClass::classify(&simd, rows_path);
            let shape = KernelShape {
                partition: if rows_path {
                    PartitionKind::Rows
                } else {
                    PartitionKind::Nnz
                },
                bounds,
                origin: IndexKind::of(&origin),
                col_index: IndexKind::Table,
                simd: simd_class,
                prefetch: if simd_class != SimdClass::Scalar && simd.prefetch > 0 {
                    PrefetchClass::Stream
                } else {
                    PrefetchClass::None
                },
            };
            let spec = match spec_mode {
                SpecializeMode::ForceInterpreted => None,
                SpecializeMode::Auto => {
                    if crate::cpu_features::no_specialize() {
                        crate::specialized::count_kernel_fallback("forced");
                        None
                    } else {
                        let matched = crate::specialized::specialize(&shape);
                        if matched.is_none() {
                            crate::specialized::count_kernel_fallback("shape");
                        }
                        matched
                    }
                }
            };
            // Materialise Model index functions into lookup tables for the
            // specialized path: the closed-form model is evaluated once per
            // domain point here, at build time, so the hot loop reads a
            // plain table instead of dispatching on the model per element.
            // Interpreted builds (forced twins, env override) skip the cost
            // and keep evaluating the model — the pre-specialization
            // behaviour, which is what they exist to price.
            let (spec_bounds, spec_origin) = if spec.is_some() {
                let bounds_table = match (&path, &row_offsets) {
                    (ExecPath::Rows, bounds @ IndexFn::Model(_)) => {
                        Some((0..=rows).map(|i| bounds.get(i)).collect())
                    }
                    _ => None,
                };
                let origin_table = match &origin {
                    model @ IndexFn::Model(_) => Some((0..rows).map(|i| model.get(i)).collect()),
                    _ => None,
                };
                (bounds_table, origin_table)
            } else {
                (None, None)
            };
            partitions.push(NativePartition {
                matrix: plan.matrix.clone(),
                col_offset: plan.col_offset,
                origin,
                row_offsets,
                path,
                row_cuts,
                spec_bounds,
                spec_origin,
                simd,
                shape,
                spec,
            });
        }
        let max_lanes = partitions
            .iter()
            .map(|p: &NativePartition| p.simd.lanes)
            .max()
            .unwrap_or(1);
        let name = format!(
            "alpha-cpu[{}]",
            metadata
                .partitions
                .first()
                .map(|p| p.describe())
                .unwrap_or_else(|| "empty".to_string())
        );
        // Resolve the run-latency histogram handle now, not per run: the
        // labels (resolved SIMD backend + partition strategy) are fixed for
        // the kernel's lifetime, so runs touch only atomics.
        let simd_label = {
            let mut labels: Vec<String> = partitions.iter().map(|p| p.simd.label()).collect();
            labels.dedup();
            if labels.is_empty() {
                "scalar".to_string()
            } else {
                labels.join("|")
            }
        };
        let path_label = {
            let any_rows = partitions.iter().any(|p| matches!(p.path, ExecPath::Rows));
            let any_nnz = partitions
                .iter()
                .any(|p| matches!(p.path, ExecPath::Nnz { .. }));
            match (any_rows, any_nnz) {
                (true, true) => "mixed",
                (false, true) => "nnz",
                _ => "rows",
            }
        };
        let run_hist = Some(alpha_telemetry::global().histogram(
            "cpu_kernel_run_us",
            &[("simd", &simd_label), ("path", path_label)],
        ));
        Ok(NativeKernel {
            partitions,
            rows: metadata.original_rows,
            cols: metadata.original_cols,
            nnz: metadata.original_nnz,
            format_bytes: format.bytes(),
            name,
            max_lanes,
            run_hist,
        })
    }

    /// Returns this kernel with run-latency telemetry detached: runs skip
    /// the clock reads and histogram updates entirely.  This is the twin
    /// `reproduce -- native` measures against to report
    /// `telemetry_overhead_pct`.
    pub fn without_telemetry(mut self) -> Self {
        self.run_hist = None;
        self
    }

    /// True when at least one partition runs a multi-lane kernel.
    pub fn is_vectorized(&self) -> bool {
        self.max_lanes > 1
    }

    /// Widest lane count across partitions (1 = fully scalar).
    pub fn max_lanes(&self) -> usize {
        self.max_lanes
    }

    /// Label of the resolved vectorization, e.g. `avx2-nnz-x8+pf16` or
    /// `scalar`; branched designs with differing decisions join them with
    /// `|`.  Recorded in bench results next to the host's CPU feature
    /// summary.
    pub fn simd_label(&self) -> String {
        let mut labels: Vec<String> = self.partitions.iter().map(|p| p.simd.label()).collect();
        labels.dedup();
        if labels.is_empty() {
            "scalar".to_string()
        } else {
            labels.join("|")
        }
    }

    /// True when every partition was matched against the monomorphized
    /// kernel library — steady-state runs execute branch-free straight-line
    /// loops with no interpreted `IndexFn`/backend dispatch.
    pub fn is_specialized(&self) -> bool {
        self.partitions.iter().all(|p| p.spec.is_some())
    }

    /// Label of each partition's [`KernelShape`] (deduped, joined with `|`),
    /// e.g. `rows[off:affine,org:id,col:table]:avx2-nnz-x8+pf`.  Persisted
    /// with design-store winners and recorded in bench results.
    pub fn shape_label(&self) -> String {
        let mut labels: Vec<String> = self.partitions.iter().map(|p| p.shape.label()).collect();
        labels.dedup();
        if labels.is_empty() {
            "none".to_string()
        } else {
            labels.join("|")
        }
    }

    /// Output dimension (`y.len()`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimension (`x.len()`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Non-zeros of the original matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Useful floating-point operations of one execution (`2 * nnz`).
    pub fn useful_flops(&self) -> u64 {
        2 * self.nnz as u64
    }

    /// Bytes of the machine-designed format (compressed arrays counted at
    /// their model size).
    pub fn format_bytes(&self) -> usize {
        self.format_bytes
    }

    /// Kernel display name (mirrors the simulator kernel's).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of index arrays across partitions that execute as closed-form
    /// functions instead of loads.
    pub fn closed_form_arrays(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                let path_fns = match &p.path {
                    ExecPath::Nnz { row_starts, .. } => row_starts.is_closed_form() as usize,
                    ExecPath::Rows => 0,
                };
                p.origin.is_closed_form() as usize
                    + p.row_offsets.is_closed_form() as usize
                    + path_fns
            })
            .sum()
    }

    /// Runs `y = A·x`, allocating the output.  `threads == 0` means one
    /// worker per available CPU core, `1` runs serially.
    ///
    /// Executes on the process-wide shared [`Pool`] — repeated runs reuse
    /// the same parked workers and **never spawn threads**.  Use
    /// [`NativeKernel::run_spawning`] for the legacy spawn-per-call
    /// behaviour (comparison benches only).
    pub fn run(&self, x: &[Scalar], threads: usize) -> Result<Vec<Scalar>, String> {
        let mut y = vec![0.0; self.rows];
        self.run_into(x, &mut y, threads)?;
        Ok(y)
    }

    /// Runs `y = A·x` into a caller-provided buffer (zeroed here first) —
    /// the allocation-free path the timing harness drives.  Pooled, like
    /// [`NativeKernel::run`].
    pub fn run_into(&self, x: &[Scalar], y: &mut [Scalar], threads: usize) -> Result<(), String> {
        self.run_into_with_pool(x, y, threads, Pool::shared())
    }

    /// [`NativeKernel::run`] on an explicit persistent [`Pool`] (e.g. a
    /// daemon's dedicated execution pool or an evaluator's private pool).
    pub fn run_with_pool(
        &self,
        x: &[Scalar],
        threads: usize,
        pool: &Pool,
    ) -> Result<Vec<Scalar>, String> {
        let mut y = vec![0.0; self.rows];
        self.run_into_with_pool(x, &mut y, threads, pool)?;
        Ok(y)
    }

    /// [`NativeKernel::run_into`] on an explicit persistent [`Pool`].
    pub fn run_into_with_pool(
        &self,
        x: &[Scalar],
        y: &mut [Scalar],
        threads: usize,
        pool: &Pool,
    ) -> Result<(), String> {
        let workers = effective_workers_pooled_for(threads, self.nnz, self.max_lanes);
        self.exec(x, y, workers, &Executor::Pooled(pool))
    }

    /// Runs `y = A·x` with the legacy **spawn-per-call** threading: scoped
    /// threads are created and joined on every call.  Kept so benches can
    /// measure the pool's dispatch win; hot paths should use
    /// [`NativeKernel::run`].
    pub fn run_spawning(&self, x: &[Scalar], threads: usize) -> Result<Vec<Scalar>, String> {
        let mut y = vec![0.0; self.rows];
        self.run_into_spawning(x, &mut y, threads)?;
        Ok(y)
    }

    /// [`NativeKernel::run_spawning`], writing into a caller-provided
    /// buffer.
    pub fn run_into_spawning(
        &self,
        x: &[Scalar],
        y: &mut [Scalar],
        threads: usize,
    ) -> Result<(), String> {
        let workers = effective_workers(threads, self.nnz);
        self.exec(x, y, workers, &Executor::Spawn { threads: workers })
    }

    /// Validates dimensions and executes every partition on `exec` with
    /// `workers`-way partitioning.
    fn exec(
        &self,
        x: &[Scalar],
        y: &mut [Scalar],
        workers: usize,
        exec: &Executor<'_>,
    ) -> Result<(), String> {
        if x.len() != self.cols {
            return Err(format!(
                "input vector has length {}, matrix has {} columns",
                x.len(),
                self.cols
            ));
        }
        if y.len() != self.rows {
            return Err(format!(
                "output vector has length {}, matrix has {} rows",
                y.len(),
                self.rows
            ));
        }
        y.fill(0.0);
        let started = self.run_hist.as_ref().map(|_| Instant::now());
        // Partitions run one after another (their outputs may overlap under
        // COL_DIV); the parallelism lives inside each partition.
        for partition in &self.partitions {
            match (&partition.path, partition.spec.as_ref()) {
                (ExecPath::Rows, Some(spec)) => {
                    exec_rows_specialized(partition, spec, x, y, workers, exec)
                }
                (ExecPath::Rows, None) => exec_rows(partition, x, y, workers, exec),
                (
                    ExecPath::Nnz {
                        nnz_per_thread,
                        row_starts,
                    },
                    Some(spec),
                ) => exec_nnz_specialized(
                    partition,
                    spec,
                    *nnz_per_thread,
                    row_starts,
                    x,
                    y,
                    workers,
                    exec,
                ),
                (
                    ExecPath::Nnz {
                        nnz_per_thread,
                        row_starts,
                    },
                    None,
                ) => exec_nnz(partition, *nnz_per_thread, row_starts, x, y, workers, exec),
            }
        }
        if let (Some(hist), Some(started)) = (self.run_hist.as_ref(), started) {
            hist.observe_duration(started.elapsed());
        }
        Ok(())
    }
}

impl std::fmt::Debug for NativeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeKernel")
            .field("name", &self.name)
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("nnz", &self.nnz)
            .field("partitions", &self.partitions.len())
            .field("closed_form_arrays", &self.closed_form_arrays())
            .finish()
    }
}

/// One row's dot product over `[start, end)` of the partition's streams.
#[inline]
fn row_dot(
    values: &[Scalar],
    col_indices: &[u32],
    x: &[Scalar],
    col_offset: usize,
    start: usize,
    end: usize,
) -> Scalar {
    let mut acc = 0.0;
    for idx in start..end {
        acc += values[idx] * x[col_indices[idx] as usize + col_offset];
    }
    acc
}

/// One row-segment dot over `[start, end)`, routed through the partition's
/// nnz-lane microkernel when one is active — nnz-partition designs and
/// row-partition designs share this dispatch.
#[inline]
fn seg_dot(
    rs: &ResolvedSimd,
    values: &[Scalar],
    col_indices: &[u32],
    x: &[Scalar],
    col_offset: usize,
    start: usize,
    end: usize,
) -> Scalar {
    if rs.is_vectorized() && rs.mapping == SimdLaneMapping::Nnz {
        simd::row_dot_nnz(rs, values, col_indices, x, col_offset, start, end)
    } else {
        row_dot(values, col_indices, x, col_offset, start, end)
    }
}

/// Accumulates (`+=`) rows `[first, first + out.len())` of a row-partition
/// into `out`, dispatching once per worker chunk between the scalar loop,
/// the nnz-lane microkernel (lanes across one row's non-zeros) and the
/// row-lane microkernel (lanes across adjacent rows).
#[allow(clippy::too_many_arguments)]
fn dot_rows_into(
    rs: &ResolvedSimd,
    values: &[Scalar],
    col_indices: &[u32],
    x: &[Scalar],
    col_offset: usize,
    first: usize,
    out: &mut [Scalar],
    row_range: &(impl Fn(usize) -> (usize, usize) + Sync),
) {
    if !rs.is_vectorized() {
        for (i, slot) in out.iter_mut().enumerate() {
            let (start, end) = row_range(first + i);
            *slot += row_dot(values, col_indices, x, col_offset, start, end);
        }
        return;
    }
    match rs.mapping {
        SimdLaneMapping::Nnz => {
            for (i, slot) in out.iter_mut().enumerate() {
                let (start, end) = row_range(first + i);
                *slot += simd::row_dot_nnz(rs, values, col_indices, x, col_offset, start, end);
            }
        }
        SimdLaneMapping::Rows => match rs.lanes {
            2 => row_lane_rows::<2>(
                rs,
                values,
                col_indices,
                x,
                col_offset,
                first,
                out,
                row_range,
            ),
            4 => row_lane_rows::<4>(
                rs,
                values,
                col_indices,
                x,
                col_offset,
                first,
                out,
                row_range,
            ),
            _ => row_lane_rows::<8>(
                rs,
                values,
                col_indices,
                x,
                col_offset,
                first,
                out,
                row_range,
            ),
        },
    }
}

/// Row-lane groups: `L` adjacent rows advance together, one accumulator per
/// lane; leftover rows (fewer than `L`) take the scalar loop.  Each lane
/// still sums its own row serially, so results are bitwise scalar.
#[allow(clippy::too_many_arguments)]
fn row_lane_rows<const L: usize>(
    rs: &ResolvedSimd,
    values: &[Scalar],
    col_indices: &[u32],
    x: &[Scalar],
    col_offset: usize,
    first: usize,
    out: &mut [Scalar],
    row_range: &(impl Fn(usize) -> (usize, usize) + Sync),
) {
    let mut i = 0;
    while i + L <= out.len() {
        let mut ranges = [(0usize, 0usize); L];
        for (l, range) in ranges.iter_mut().enumerate() {
            *range = row_range(first + i + l);
        }
        let mut acc = [0.0 as Scalar; L];
        simd::rows_dot_row_lanes::<L>(
            values,
            col_indices,
            x,
            col_offset,
            &ranges,
            &mut acc,
            rs.prefetch,
        );
        for (l, &v) in acc.iter().enumerate() {
            out[i + l] += v;
        }
        i += L;
    }
    for (j, slot) in out.iter_mut().enumerate().skip(i) {
        let (start, end) = row_range(first + j);
        *slot += row_dot(values, col_indices, x, col_offset, start, end);
    }
}

/// Row-partition loop through the **monomorphized kernel library**: the
/// worker-chunk body is a pre-resolved function pointer whose bounds
/// arithmetic, SIMD backend and prefetch class were compiled into
/// straight-line code at build time — the only indirection left is one
/// indirect call per worker chunk.  Partitioning semantics (nnz-balanced
/// cuts, contiguous in-place vs staged scatter) are identical to the
/// interpreted [`exec_rows`].
fn exec_rows_specialized(
    p: &NativePartition,
    spec: &SpecializedPartition,
    x: &[Scalar],
    y: &mut [Scalar],
    workers: usize,
    exec: &Executor<'_>,
) {
    let rows = p.matrix.rows();
    if rows == 0 {
        return;
    }
    let SpecExec::Rows(chunk) = spec.exec else {
        unreachable!("row partitions specialize to chunk loops")
    };
    let args = p.args(x);
    let workers = workers.clamp(1, rows);
    let computed;
    let cuts: &[usize] = match p.row_cuts.as_ref().and_then(|cache| cache.get(workers)) {
        Some(cached) => cached,
        None => {
            computed = balanced_row_cuts(p.matrix.row_offsets(), workers);
            &computed
        }
    };

    if let Some(base) = p.origin.contiguous_base() {
        let target = &mut y[base..base + rows];
        exec.over_chunks(alpha_parallel::split_mut_at(target, cuts), |first, out| {
            chunk(&args, first, out)
        });
        return;
    }

    let ranges: Vec<(usize, usize)> = cuts
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|&(first, last)| first < last)
        .collect();
    let sums: Vec<Vec<Scalar>> = exec.map(&ranges, |&(first, last)| {
        let mut out = vec![0.0; last - first];
        chunk(&args, first, &mut out);
        out
    });
    let scatter_args = p.scatter_args();
    for (&(first, _), partial) in ranges.iter().zip(&sums) {
        (spec.scatter)(&scatter_args, first, partial, y);
    }
}

/// Nnz-partition loop through the monomorphized library: the per-span
/// segment walk and the scatter are pre-resolved function pointers.  The
/// chunk descriptor (`bmt_row_starts`) may be *any* index map — even a
/// fitted model — because it resolves once per worker span, never per
/// element.
#[allow(clippy::too_many_arguments)]
fn exec_nnz_specialized(
    p: &NativePartition,
    spec: &SpecializedPartition,
    nnz_per_thread: usize,
    row_starts: &IndexFn,
    x: &[Scalar],
    y: &mut [Scalar],
    threads: usize,
    exec: &Executor<'_>,
) {
    let nnz = p.matrix.nnz();
    if nnz == 0 {
        return;
    }
    let SpecExec::Nnz(span) = spec.exec else {
        unreachable!("nnz partitions specialize to span loops")
    };
    let total_chunks = nnz.div_ceil(nnz_per_thread).max(1);
    let workers = threads.min(total_chunks).max(1);
    let chunks_per_worker = total_chunks.div_ceil(workers);
    let spans: Vec<(usize, usize, usize)> = (0..workers)
        .map(|w| {
            let first_chunk = w * chunks_per_worker;
            let start = (first_chunk * nnz_per_thread).min(nnz);
            let end = ((first_chunk + chunks_per_worker) * nnz_per_thread).min(nnz);
            (first_chunk, start, end)
        })
        .filter(|&(_, start, end)| start < end)
        .collect();

    let args = p.args(x);
    let offsets = p.matrix.row_offsets();
    let last_row = p.matrix.rows().saturating_sub(1);
    let partials: Vec<(usize, Vec<Scalar>)> = exec.map(&spans, |&(first_chunk, start, end)| {
        let mut row = (row_starts.get(first_chunk) as usize).min(last_row);
        while row < last_row && offsets[row + 1] as usize <= start {
            row += 1;
        }
        (row, span(&args, offsets, row, start, end))
    });
    let scatter_args = p.scatter_args();
    for (base_row, sums) in &partials {
        (spec.scatter)(&scatter_args, *base_row, sums, y);
    }
}

/// Row-partition loop: contiguous local-row ranges across workers, one dot
/// product per row.  Worker boundaries are **nnz-balanced** (see
/// [`BalancedRowCuts`]): each worker owns roughly the same number of
/// non-zeros, not the same number of rows, so skewed matrices stop
/// serialising behind their heaviest worker.
///
/// When the origin map is contiguous (no reordering — the common case for
/// unsorted designs, whose `origin_rows` compressed to identity/affine),
/// each worker owns a disjoint slice of `y` and accumulates **in place**:
/// no staging buffers, no scatter pass, no per-run allocation.  Reordered
/// designs (SORT/BIN) stage per-worker partials and pay a permuted scatter —
/// a real cost of that format, not an artifact of the harness.
fn exec_rows(
    p: &NativePartition,
    x: &[Scalar],
    y: &mut [Scalar],
    workers: usize,
    exec: &Executor<'_>,
) {
    let rows = p.matrix.rows();
    if rows == 0 {
        return;
    }
    // Monomorphise the row-bounds accessor OUTSIDE the hot loop: stored
    // offsets compile to two adjacent loads, affine offsets to pure
    // arithmetic on pre-resolved locals (the ELL-like fixed-row-length
    // case) — only fitted models still dispatch per row.
    match &p.row_offsets {
        IndexFn::Table(offsets) => {
            let offsets: &[u32] = offsets;
            exec_rows_with(p, x, y, workers, exec, |row| {
                (offsets[row] as usize, offsets[row + 1] as usize)
            })
        }
        IndexFn::Identity => exec_rows_with(p, x, y, workers, exec, |row| (row, row + 1)),
        IndexFn::Affine { base, slope } => {
            let (base, slope) = (*base, *slope);
            exec_rows_with(p, x, y, workers, exec, move |row| {
                let start = base + slope * row as i64;
                (start as usize, (start + slope) as usize)
            })
        }
        bounds @ IndexFn::Model(_) => exec_rows_with(p, x, y, workers, exec, |row| {
            (bounds.get(row) as usize, bounds.get(row + 1) as usize)
        }),
    }
}

fn exec_rows_with(
    p: &NativePartition,
    x: &[Scalar],
    y: &mut [Scalar],
    workers: usize,
    exec: &Executor<'_>,
    row_range: impl Fn(usize) -> (usize, usize) + Sync,
) {
    let rows = p.matrix.rows();
    let values = p.matrix.values();
    let col_indices = p.matrix.col_indices();
    let col_offset = p.col_offset;

    // Nnz-balanced worker boundaries: from the build-time cache when the
    // count is within the host's core range, recomputed otherwise.
    let workers = workers.clamp(1, rows);
    let computed;
    let cuts: &[usize] = match p.row_cuts.as_ref().and_then(|cache| cache.get(workers)) {
        Some(cached) => cached,
        None => {
            computed = balanced_row_cuts(p.matrix.row_offsets(), workers);
            &computed
        }
    };

    if let Some(base) = p.origin.contiguous_base() {
        let target = &mut y[base..base + rows];
        exec.over_chunks(alpha_parallel::split_mut_at(target, cuts), |first, out| {
            dot_rows_into(
                &p.simd,
                values,
                col_indices,
                x,
                col_offset,
                first,
                out,
                &row_range,
            );
        });
        return;
    }

    let ranges: Vec<(usize, usize)> = cuts
        .windows(2)
        .map(|w| (w[0], w[1]))
        .filter(|&(first, last)| first < last)
        .collect();
    let sums: Vec<Vec<Scalar>> = exec.map(&ranges, |&(first, last)| {
        let mut out = vec![0.0; last - first];
        dot_rows_into(
            &p.simd,
            values,
            col_indices,
            x,
            col_offset,
            first,
            &mut out,
            &row_range,
        );
        out
    });
    for (&(first, _), chunk) in ranges.iter().zip(&sums) {
        scatter(&p.origin, first, chunk, y);
    }
}

/// Nnz-partition loop: workers own groups of whole design chunks, walk their
/// non-zero span emitting one partial per row segment; boundary rows merge by
/// accumulation in the scatter.
fn exec_nnz(
    p: &NativePartition,
    nnz_per_thread: usize,
    row_starts: &IndexFn,
    x: &[Scalar],
    y: &mut [Scalar],
    threads: usize,
    exec: &Executor<'_>,
) {
    let nnz = p.matrix.nnz();
    if nnz == 0 {
        return;
    }
    let total_chunks = nnz.div_ceil(nnz_per_thread).max(1);
    let workers = threads.min(total_chunks).max(1);
    let chunks_per_worker = total_chunks.div_ceil(workers);
    // (first design chunk, nnz start, nnz end) per worker span.
    let spans: Vec<(usize, usize, usize)> = (0..workers)
        .map(|w| {
            let first_chunk = w * chunks_per_worker;
            let start = (first_chunk * nnz_per_thread).min(nnz);
            let end = ((first_chunk + chunks_per_worker) * nnz_per_thread).min(nnz);
            (first_chunk, start, end)
        })
        .filter(|&(_, start, end)| start < end)
        .collect();

    let values = p.matrix.values();
    let col_indices = p.matrix.col_indices();
    let offsets = p.matrix.row_offsets();
    let last_row = p.matrix.rows().saturating_sub(1);
    let partials: Vec<(usize, Vec<Scalar>)> = exec.map(&spans, |&(first_chunk, start, end)| {
        // The chunk descriptor gives the first row (closed-form when the
        // row structure is regular); skip any empty rows before `start`.
        let mut row = (row_starts.get(first_chunk) as usize).min(last_row);
        while row < last_row && offsets[row + 1] as usize <= start {
            row += 1;
        }
        let base_row = row;
        let mut sums = Vec::new();
        let mut cursor = start;
        loop {
            let seg_end = (offsets[row + 1] as usize).min(end);
            sums.push(seg_dot(
                &p.simd,
                values,
                col_indices,
                x,
                p.col_offset,
                cursor,
                seg_end,
            ));
            cursor = seg_end;
            if cursor >= end {
                break;
            }
            row += 1;
        }
        (base_row, sums)
    });

    for (base_row, sums) in &partials {
        scatter(&p.origin, *base_row, sums, y);
    }
}

/// Applies the origin-row permutation while merging partial sums into `y`.
/// `+=` (rather than `=`) is what makes worker-boundary rows and `COL_DIV`
/// sibling partitions correct.
#[inline]
fn scatter(origin: &IndexFn, base_row: usize, sums: &[Scalar], y: &mut [Scalar]) {
    match origin {
        IndexFn::Identity => {
            for (j, &v) in sums.iter().enumerate() {
                y[base_row + j] += v;
            }
        }
        IndexFn::Affine { base, slope } => {
            let (base, slope) = (*base, *slope);
            for (j, &v) in sums.iter().enumerate() {
                y[(base + slope * (base_row + j) as i64) as usize] += v;
            }
        }
        IndexFn::Table(table) => {
            for (j, &v) in sums.iter().enumerate() {
                y[table[base_row + j] as usize] += v;
            }
        }
        origin @ IndexFn::Model(_) => {
            for (j, &v) in sums.iter().enumerate() {
                y[origin.get(base_row + j) as usize] += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_codegen::{generate, GeneratorOptions};
    use alpha_graph::presets;
    use alpha_matrix::{gen, DenseVector};

    fn native_for(
        graph: &alpha_graph::OperatorGraph,
        matrix: &CsrMatrix,
        compression: bool,
    ) -> NativeKernel {
        let generated = generate(
            graph,
            matrix,
            GeneratorOptions {
                model_compression: compression,
            },
        )
        .expect("generation succeeds");
        NativeKernel::new(generated.kernel.metadata(), &generated.format)
    }

    fn check(graph: &alpha_graph::OperatorGraph, matrix: &CsrMatrix, threads: usize) {
        let kernel = native_for(graph, matrix, true);
        let x = DenseVector::random(matrix.cols(), 11);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        let y = kernel.run(x.as_slice(), threads).expect("kernel runs");
        assert!(
            DenseVector::from_vec(y).approx_eq(&expected, 1e-3),
            "{}: wrong result at {threads} threads",
            kernel.name()
        );
    }

    #[test]
    fn every_preset_is_correct_on_every_pattern_family() {
        for family in gen::PatternFamily::ALL {
            let matrix = family.generate(256, 6, 33);
            for (_, graph) in presets::all_presets() {
                check(&graph, &matrix, 1);
                check(&graph, &matrix, 4);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results_materially() {
        let matrix = gen::powerlaw(1_024, 1_024, 12, 1.9, 5);
        let x = DenseVector::random(1_024, 3);
        for (_, graph) in presets::all_presets() {
            let kernel = native_for(&graph, &matrix, true);
            let serial = kernel.run(x.as_slice(), 1).unwrap();
            for threads in [2, 3, 8] {
                let parallel = kernel.run(x.as_slice(), threads).unwrap();
                assert!(
                    DenseVector::from_vec(parallel).approx_eq(&serial, 1e-4),
                    "{}: thread count changed the result",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn compression_toggles_closed_form_execution_not_results() {
        let matrix = gen::uniform_random(512, 512, 8, 7);
        let x = DenseVector::random(512, 9);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        let with = native_for(&presets::csr_scalar(), &matrix, true);
        let without = native_for(&presets::csr_scalar(), &matrix, false);
        assert!(
            with.closed_form_arrays() > 0,
            "identity origin must compress"
        );
        assert_eq!(without.closed_form_arrays(), 0);
        for kernel in [&with, &without] {
            let y = kernel.run(x.as_slice(), 2).unwrap();
            assert!(DenseVector::from_vec(y).approx_eq(&expected, 1e-3));
        }
    }

    #[test]
    fn nnz_split_handles_rows_spanning_worker_boundaries() {
        // One long row dominates: every worker span cuts through it, so the
        // scatter's accumulation is load-bearing.
        let mut coo = alpha_matrix::CooMatrix::new(4, 512);
        for c in 0..512 {
            coo.push(0, c, 0.5);
        }
        for r in 1..4 {
            coo.push(r, r, 1.0);
        }
        let matrix = CsrMatrix::from_coo(&coo);
        check(&presets::csr5_like(16), &matrix, 8);
    }

    #[test]
    fn col_div_partitions_accumulate_shared_rows() {
        let matrix = gen::uniform_random(200, 200, 12, 3);
        check(&presets::col_split_atomic(2), &matrix, 4);
    }

    #[test]
    fn empty_rows_are_preserved_as_zeros() {
        let mut coo = alpha_matrix::CooMatrix::new(64, 64);
        for r in (0..64).step_by(3) {
            coo.push(r, (r * 7) % 64, 1.0 + r as Scalar);
        }
        let matrix = CsrMatrix::from_coo(&coo);
        for (_, graph) in presets::all_presets() {
            check(&graph, &matrix, 2);
        }
    }

    #[test]
    fn run_rejects_wrong_dimensions() {
        let matrix = gen::uniform_random(64, 32, 4, 1);
        let kernel = native_for(&presets::csr_scalar(), &matrix, true);
        assert!(kernel.run(&[1.0; 31], 1).is_err());
        let mut y = vec![0.0; 63];
        assert!(kernel.run_into(&[1.0; 32], &mut y, 1).is_err());
    }

    #[test]
    fn kernel_reports_its_shape() {
        let matrix = gen::powerlaw(300, 300, 8, 2.0, 5);
        let kernel = native_for(&presets::sell_like(), &matrix, true);
        assert_eq!(kernel.rows(), 300);
        assert_eq!(kernel.cols(), 300);
        assert_eq!(kernel.nnz(), matrix.nnz());
        assert_eq!(kernel.useful_flops(), 2 * matrix.nnz() as u64);
        assert!(kernel.format_bytes() > 0);
        assert!(kernel.name().contains("alpha-cpu"));
    }

    #[test]
    fn balanced_cuts_cover_rows_and_balance_nnz() {
        // An adversarially skewed matrix: the first rows carry almost all
        // the work (descending row lengths), so an equal-ROW split loads its
        // first worker with nearly everything.
        let rows = 512usize;
        let mut coo = alpha_matrix::CooMatrix::new(rows, rows);
        for r in 0..rows {
            let len = (rows / (r + 1)).max(1);
            for k in 0..len {
                coo.push(r, (r + k * 7) % rows, 1.0);
            }
        }
        let matrix = CsrMatrix::from_coo(&coo);
        let offsets = matrix.row_offsets();
        let total = matrix.nnz();
        let max_row = (0..rows)
            .map(|r| (offsets[r + 1] - offsets[r]) as usize)
            .max()
            .unwrap();
        let nnz_of = |first: usize, last: usize| offsets[last] as usize - offsets[first] as usize;

        for workers in [1usize, 2, 3, 4, 8] {
            let cuts = balanced_row_cuts(offsets, workers);
            assert_eq!(*cuts.first().unwrap(), 0);
            assert_eq!(*cuts.last().unwrap(), rows);
            assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts must ascend");

            // Rows are atomic, so the best reachable balance is the ideal
            // share plus at most one row's worth of slack.
            let balanced_max = cuts
                .windows(2)
                .map(|w| nnz_of(w[0], w[1]))
                .max()
                .unwrap_or(0);
            let ideal = total.div_ceil(workers);
            assert!(
                balanced_max <= ideal + max_row,
                "{workers} workers: balanced max {balanced_max} > ideal {ideal} + max row {max_row}"
            );
            // And on this skew the equal-rows split is strictly worse.
            if workers > 1 {
                let rows_per = rows.div_ceil(workers);
                let equal_max = (0..workers)
                    .map(|w| nnz_of((w * rows_per).min(rows), ((w + 1) * rows_per).min(rows)))
                    .max()
                    .unwrap_or(total);
                assert!(
                    balanced_max < equal_max,
                    "{workers} workers: balanced {balanced_max} should beat equal-rows {equal_max}"
                );
            }
        }
    }

    #[test]
    fn balanced_cuts_handle_degenerate_shapes() {
        // Empty matrix, single row, more workers than rows.
        assert_eq!(balanced_row_cuts(&[0], 4), vec![0, 0]);
        assert_eq!(balanced_row_cuts(&[0, 5], 4), vec![0, 1]);
        let cuts = balanced_row_cuts(&[0, 1, 2, 3], 8);
        assert_eq!(*cuts.first().unwrap(), 0);
        assert_eq!(*cuts.last().unwrap(), 3);
    }

    #[test]
    fn pooled_and_spawning_paths_agree_on_every_family() {
        // The nnz-balanced pooled path vs the (also nnz-balanced) spawn path
        // vs serial: identical partitioning semantics, different executors.
        let pool = alpha_parallel::Pool::new(4);
        for family in gen::PatternFamily::ALL {
            let matrix = family.generate(192, 6, 21);
            let x = DenseVector::random(matrix.cols(), 13);
            for (name, graph) in presets::all_presets() {
                let kernel = native_for(&graph, &matrix, true);
                let serial = kernel.run(x.as_slice(), 1).unwrap();
                let pooled = kernel.run_with_pool(x.as_slice(), 4, &pool).unwrap();
                let spawned = kernel.run_spawning(x.as_slice(), 4).unwrap();
                assert!(
                    DenseVector::from_vec(pooled.clone()).approx_eq(&serial, 1e-4),
                    "{name} on {}: pooled diverged from serial",
                    family.name()
                );
                assert!(
                    DenseVector::from_vec(spawned).approx_eq(&pooled, 1e-4),
                    "{name} on {}: spawn diverged from pooled",
                    family.name()
                );
            }
        }
    }

    #[test]
    fn pooled_thresholds_unlock_parallelism_an_order_of_magnitude_earlier() {
        const { assert!(MIN_NNZ_PER_WORKER / MIN_NNZ_PER_WORKER_POOLED >= 10) };
        // A 100k-nnz matrix: forced serial on the spawn path, parallel on
        // the pooled path (given enough cores).
        let nnz = 100_000;
        assert_eq!(effective_workers(0, nnz), 1);
        let pooled = effective_workers_pooled(0, nnz);
        assert_eq!(
            pooled,
            alpha_parallel::default_threads().min(nnz.div_ceil(MIN_NNZ_PER_WORKER_POOLED))
        );
        // Explicit counts are honoured verbatim on both paths.
        assert_eq!(effective_workers(3, nnz), 3);
        assert_eq!(effective_workers_pooled(3, nnz), 3);
    }

    #[test]
    fn index_fn_lowers_compression_models() {
        let linear = FormatArray {
            name: "origin_rows".into(),
            data: (0..100).collect(),
            compressed: alpha_codegen::compress_array(&(0..100).collect::<Vec<u32>>()),
        };
        assert!(matches!(IndexFn::from_array(&linear), IndexFn::Identity));

        let stepped: Vec<u32> = (0..100).map(|i| 16 * (i / 8)).collect();
        let step = FormatArray {
            name: "row_offsets".into(),
            data: stepped.clone(),
            compressed: alpha_codegen::compress_array(&stepped),
        };
        let f = IndexFn::from_array(&step);
        assert!(f.is_closed_form());
        for (i, &v) in stepped.iter().enumerate() {
            assert_eq!(f.get(i), v);
        }

        let irregular: Vec<u32> = (0..100u32)
            .map(|i| i.wrapping_mul(2654435761) % 977)
            .collect();
        let table = FormatArray {
            name: "origin_rows".into(),
            data: irregular.clone(),
            compressed: alpha_codegen::compress_array(&irregular),
        };
        let f = IndexFn::from_array(&table);
        assert!(!f.is_closed_form());
        assert_eq!(f.get(42), irregular[42]);
    }
}
