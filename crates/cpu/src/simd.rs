//! SIMD microkernels for the native backend.
//!
//! Two kernel families, matching the `SIMD_NNZ_LANES` / `SIMD_ROW_LANES`
//! mapping operators:
//!
//! * **nnz-lane dots** — `lanes` consecutive non-zeros of one row are
//!   processed per step; column indices load as a vector, `x` entries are
//!   **gathered**, and a fixed-shape horizontal-add tree folds the lane
//!   partials into the row result.  On AVX2 this is `_mm256_i32gather_ps`
//!   (8 lanes) / `_mm_i32gather_ps` (4 lanes); on NEON the gather is emulated
//!   with lane loads; everywhere else a portable multi-accumulator loop with
//!   the **same accumulation tree** runs instead — so hardware and portable
//!   paths are bit-compatible lane for lane.
//! * **row-lane dots** — `lanes` adjacent rows are accumulated together, one
//!   independent accumulator chain per lane.  Each lane walks its row in the
//!   same serial order as the scalar kernel (bitwise-identical results); the
//!   win is instruction-level parallelism from `lanes` independent FP chains
//!   instead of one serial dependency chain.
//!
//! Both families accept a software **prefetch distance** (in non-zeros): the
//! value/index streams — and, for nnz-lanes, the gathered `x` target — are
//! prefetched that far ahead.  On targets without a stable prefetch intrinsic
//! (aarch64) the distance is accepted and ignored.
//!
//! All multiply-accumulate steps use separate multiply and add (no FMA), so
//! every backend computing the same lane schedule produces identical bits.

use crate::cpu_features::{self, SimdSupport};
use alpha_graph::{SimdLaneMapping, SimdPlan};
use alpha_matrix::Scalar;

/// Widest lane count any backend supports.
pub const MAX_LANES: usize = 8;

/// How a kernel build decides between vectorized and scalar execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// Follow the design's [`SimdPlan`], the hardware probe, and the
    /// [`cpu_features::NO_SIMD_ENV`] override.
    #[default]
    Auto,
    /// Ignore the plan and execute every partition scalar — used by benches
    /// to build a scalar twin of a vectorized kernel without touching the
    /// process environment.
    ForceScalar,
}

/// Which implementation backs the lane kernels of one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// AVX2 hardware gathers (x86_64, nnz-lanes with 4 or 8 lanes).
    Avx2,
    /// NEON vectors with emulated gathers (aarch64, nnz-lanes 4 or 8).
    Neon,
    /// Portable lane code (row-lanes always; nnz-lanes on plain hosts or
    /// with 2 lanes, where a gather would not pay).
    Portable,
}

/// The vectorization decision for one partition, resolved once at kernel
/// build time from the design's [`SimdPlan`], the [`SimdMode`], and the
/// host's [`cpu_features`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedSimd {
    /// Effective lane count (1 = scalar execution).
    pub lanes: usize,
    /// Row-vs-nnz lane mapping from the design.
    pub mapping: SimdLaneMapping,
    /// Prefetch distance in non-zeros (0 = no software prefetch).
    pub prefetch: usize,
    /// Implementation selected for this host.
    pub backend: Backend,
}

/// Counts a vectorized plan resolving to scalar execution on the
/// process-wide registry (`cpu_simd_fallback_total{reason=...}`): `"forced"`
/// for an explicit [`SimdMode::ForceScalar`] / env override, `"lanes"` for a
/// lane width no backend implements.  Resolution happens once per kernel
/// build, so a direct registry lookup is cheap enough here.
fn count_simd_fallback(reason: &'static str) {
    alpha_telemetry::global()
        .counter("cpu_simd_fallback_total", &[("reason", reason)])
        .inc();
}

impl ResolvedSimd {
    /// Plain scalar execution (the pre-SIMD native backend).
    pub fn scalar() -> Self {
        ResolvedSimd {
            lanes: 1,
            mapping: SimdLaneMapping::Nnz,
            prefetch: 0,
            backend: Backend::Portable,
        }
    }

    /// True when lane kernels (rather than the scalar loop) will run.
    pub fn is_vectorized(&self) -> bool {
        self.lanes > 1
    }

    /// Resolves a design's plan for this host.  Fallback rules:
    /// `ForceScalar` or the env override pin everything scalar; row-lane
    /// kernels are always portable (their win is independent accumulator
    /// chains, not vector loads); nnz-lane kernels use hardware gathers for
    /// 4/8 lanes when available and portable lane code otherwise; lane
    /// widths outside {2, 4, 8} run scalar.
    pub fn resolve(plan: &SimdPlan, mode: SimdMode) -> ResolvedSimd {
        if !plan.is_vectorized() {
            return ResolvedSimd::scalar();
        }
        if mode == SimdMode::ForceScalar || cpu_features::force_scalar() {
            count_simd_fallback("forced");
            return ResolvedSimd::scalar();
        }
        let support = cpu_features::detect_hardware();
        let lanes = match plan.lanes {
            2 | 4 | 8 => plan.lanes,
            _ => {
                count_simd_fallback("lanes");
                return ResolvedSimd::scalar();
            }
        };
        let backend = match (plan.lane_mapping, support, lanes) {
            (SimdLaneMapping::Rows, _, _) => Backend::Portable,
            (SimdLaneMapping::Nnz, SimdSupport::Avx2, 4 | 8) => Backend::Avx2,
            (SimdLaneMapping::Nnz, SimdSupport::Neon, 4 | 8) => Backend::Neon,
            _ => Backend::Portable,
        };
        ResolvedSimd {
            lanes,
            mapping: plan.lane_mapping,
            prefetch: plan.prefetch_distance,
            backend,
        }
    }

    /// Compact label for bench records, e.g. `avx2-nnz-x8+pf16`,
    /// `portable-row-x4`, or `scalar`.
    pub fn label(&self) -> String {
        if !self.is_vectorized() {
            return "scalar".to_string();
        }
        let backend = match self.backend {
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
            Backend::Portable => "portable",
        };
        let mapping = match self.mapping {
            SimdLaneMapping::Rows => "row",
            SimdLaneMapping::Nnz => "nnz",
        };
        if self.prefetch > 0 {
            format!("{backend}-{mapping}-x{}+pf{}", self.lanes, self.prefetch)
        } else {
            format!("{backend}-{mapping}-x{}", self.lanes)
        }
    }
}

/// Prefetches the cache line holding `ptr` into all cache levels.  No-op on
/// targets without a stable prefetch intrinsic.
#[inline(always)]
fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // SAFETY: prefetch is a hint; it never faults, even on wild pointers.
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Prefetches the value/index streams — and the gathered `x` target — at
/// `idx + distance`, clamped to the stream end.
#[inline(always)]
fn prefetch_streams(
    values: &[Scalar],
    col_indices: &[u32],
    x: &[Scalar],
    col_offset: usize,
    idx: usize,
    end: usize,
    distance: usize,
) {
    if distance == 0 {
        return;
    }
    let ahead = (idx + distance).min(end.saturating_sub(1));
    prefetch_read(&values[ahead]);
    prefetch_read(&col_indices[ahead]);
    // The x gather is the cache-miss magnet: prefetch its future target too.
    prefetch_read(&x[col_indices[ahead] as usize + col_offset]);
}

/// The fixed horizontal-add tree every backend uses for `L` lane partials:
/// fold the upper half onto the lower until one value remains.  For L=8 this
/// is `((a0+a4)+(a2+a6)) + ((a1+a5)+(a3+a7))` — exactly the shape of the
/// AVX2 `extract_hi + movehl + shuffle` sequence.
#[inline(always)]
fn hsum_tree<const L: usize>(acc: &[Scalar; L]) -> Scalar {
    let mut folded = *acc;
    let mut width = L;
    while width > 1 {
        width /= 2;
        for i in 0..width {
            folded[i] += folded[i + width];
        }
        // After the first fold of 8 lanes the live values are
        // [a0+a4, a1+a5, a2+a6, a3+a7]; the next folds pair (0,2) and (1,3),
        // which the loop above expresses as folded[i] += folded[i+width].
    }
    folded[0]
}

/// Portable nnz-lane dot over `[start, end)`: `L` independent accumulators
/// stride the row, the tail accumulates serially, and `hsum_tree` folds the
/// lanes.  Bit-compatible with the AVX2/NEON implementations of the same `L`.
pub fn row_dot_nnz_portable<const L: usize>(
    values: &[Scalar],
    col_indices: &[u32],
    x: &[Scalar],
    col_offset: usize,
    start: usize,
    end: usize,
    prefetch: usize,
) -> Scalar {
    let mut acc = [0.0 as Scalar; L];
    let mut i = start;
    while i + L <= end {
        prefetch_streams(values, col_indices, x, col_offset, i, end, prefetch);
        for l in 0..L {
            acc[l] += values[i + l] * x[col_indices[i + l] as usize + col_offset];
        }
        i += L;
    }
    let mut tail = 0.0 as Scalar;
    for j in i..end {
        tail += values[j] * x[col_indices[j] as usize + col_offset];
    }
    hsum_tree(&acc) + tail
}

/// Portable row-lane dot: each of the `L` lanes accumulates one row of
/// `ranges` serially (the exact order of the scalar kernel, so results are
/// bitwise identical to it); interleaving the lanes gives `L` independent FP
/// dependency chains.
pub fn rows_dot_row_lanes<const L: usize>(
    values: &[Scalar],
    col_indices: &[u32],
    x: &[Scalar],
    col_offset: usize,
    ranges: &[(usize, usize); L],
    out: &mut [Scalar; L],
    prefetch: usize,
) {
    let min_len = ranges.iter().map(|&(s, e)| e - s).min().unwrap_or(0);
    let mut acc = [0.0 as Scalar; L];
    for k in 0..min_len {
        if prefetch > 0 {
            // One stream prefetch per step, on the lane furthest ahead.
            let i = ranges[L - 1].0 + k;
            prefetch_streams(
                values,
                col_indices,
                x,
                col_offset,
                i,
                ranges[L - 1].1,
                prefetch,
            );
        }
        for l in 0..L {
            let i = ranges[l].0 + k;
            acc[l] += values[i] * x[col_indices[i] as usize + col_offset];
        }
    }
    for l in 0..L {
        for i in ranges[l].0 + min_len..ranges[l].1 {
            acc[l] += values[i] * x[col_indices[i] as usize + col_offset];
        }
        out[l] = acc[l];
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::{prefetch_streams, Scalar};
    use std::arch::x86_64::*;

    /// 8-lane nnz dot via `_mm256_i32gather_ps`.
    ///
    /// # Safety
    /// The caller must have verified AVX2 support at resolve time.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_dot_nnz8(
        values: &[Scalar],
        col_indices: &[u32],
        x: &[Scalar],
        col_offset: usize,
        start: usize,
        end: usize,
        prefetch: usize,
    ) -> Scalar {
        let mut acc = _mm256_setzero_ps();
        let offset = _mm256_set1_epi32(col_offset as i32);
        let mut i = start;
        while i + 8 <= end {
            prefetch_streams(values, col_indices, x, col_offset, i, end, prefetch);
            let v = _mm256_loadu_ps(values.as_ptr().add(i));
            let idx = _mm256_loadu_si256(col_indices.as_ptr().add(i) as *const __m256i);
            let idx = _mm256_add_epi32(idx, offset);
            // Gather x[col + col_offset] for all 8 lanes; every index is a
            // valid in-bounds column, the same loads the scalar loop issues.
            let gathered = _mm256_i32gather_ps::<4>(x.as_ptr(), idx);
            // mul + add (not FMA) keeps bits identical to the portable path.
            acc = _mm256_add_ps(acc, _mm256_mul_ps(v, gathered));
            i += 8;
        }
        let mut tail = 0.0 as Scalar;
        for j in i..end {
            tail += values[j] * x[col_indices[j] as usize + col_offset];
        }
        // Horizontal add with the shared tree shape:
        // q = lo + hi; d = [q0+q2, q1+q3]; result = d0 + d1.
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps::<1>(acc);
        let q = _mm_add_ps(lo, hi);
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let r = _mm_add_ss(d, _mm_shuffle_ps::<0b01>(d, d));
        _mm_cvtss_f32(r) + tail
    }

    /// 4-lane nnz dot via `_mm_i32gather_ps`.
    ///
    /// # Safety
    /// The caller must have verified AVX2 support at resolve time.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_dot_nnz4(
        values: &[Scalar],
        col_indices: &[u32],
        x: &[Scalar],
        col_offset: usize,
        start: usize,
        end: usize,
        prefetch: usize,
    ) -> Scalar {
        let mut acc = _mm_setzero_ps();
        let offset = _mm_set1_epi32(col_offset as i32);
        let mut i = start;
        while i + 4 <= end {
            prefetch_streams(values, col_indices, x, col_offset, i, end, prefetch);
            let v = _mm_loadu_ps(values.as_ptr().add(i));
            let idx = _mm_loadu_si128(col_indices.as_ptr().add(i) as *const __m128i);
            let idx = _mm_add_epi32(idx, offset);
            let gathered = _mm_i32gather_ps::<4>(x.as_ptr(), idx);
            acc = _mm_add_ps(acc, _mm_mul_ps(v, gathered));
            i += 4;
        }
        let mut tail = 0.0 as Scalar;
        for j in i..end {
            tail += values[j] * x[col_indices[j] as usize + col_offset];
        }
        let d = _mm_add_ps(acc, _mm_movehl_ps(acc, acc));
        let r = _mm_add_ss(d, _mm_shuffle_ps::<0b01>(d, d));
        _mm_cvtss_f32(r) + tail
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    use super::Scalar;
    use std::arch::aarch64::*;

    /// Gathers 4 `x` entries through the column-index stream into one NEON
    /// register (aarch64 has no hardware gather).
    ///
    /// # Safety
    /// `col_indices[i..i + 4]` must be in bounds and every indexed `x` entry
    /// valid — the same accesses the scalar loop performs.
    #[inline(always)]
    unsafe fn gather4(
        x: &[Scalar],
        col_indices: &[u32],
        col_offset: usize,
        i: usize,
    ) -> float32x4_t {
        let g = [
            x[col_indices[i] as usize + col_offset],
            x[col_indices[i + 1] as usize + col_offset],
            x[col_indices[i + 2] as usize + col_offset],
            x[col_indices[i + 3] as usize + col_offset],
        ];
        vld1q_f32(g.as_ptr())
    }

    /// Folds one NEON register with the shared tree shape:
    /// `d = [a0+a2, a1+a3]; result = d0 + d1`.
    #[inline(always)]
    unsafe fn hsum4(acc: float32x4_t) -> Scalar {
        let d = vadd_f32(vget_low_f32(acc), vget_high_f32(acc));
        vget_lane_f32::<0>(d) + vget_lane_f32::<1>(d)
    }

    /// 4-lane nnz dot (NEON vectors, emulated gather).
    ///
    /// # Safety
    /// The caller must have verified NEON support at resolve time.
    #[target_feature(enable = "neon")]
    pub unsafe fn row_dot_nnz4(
        values: &[Scalar],
        col_indices: &[u32],
        x: &[Scalar],
        col_offset: usize,
        start: usize,
        end: usize,
        _prefetch: usize,
    ) -> Scalar {
        let mut acc = vdupq_n_f32(0.0);
        let mut i = start;
        while i + 4 <= end {
            let v = vld1q_f32(values.as_ptr().add(i));
            let g = gather4(x, col_indices, col_offset, i);
            acc = vaddq_f32(acc, vmulq_f32(v, g));
            i += 4;
        }
        let mut tail = 0.0 as Scalar;
        for j in i..end {
            tail += values[j] * x[col_indices[j] as usize + col_offset];
        }
        hsum4(acc) + tail
    }

    /// 8-lane nnz dot: two NEON registers per step, folded with the 8-wide
    /// tree (`lo + hi` first, then the 4-wide tree).
    ///
    /// # Safety
    /// The caller must have verified NEON support at resolve time.
    #[target_feature(enable = "neon")]
    pub unsafe fn row_dot_nnz8(
        values: &[Scalar],
        col_indices: &[u32],
        x: &[Scalar],
        col_offset: usize,
        start: usize,
        end: usize,
        _prefetch: usize,
    ) -> Scalar {
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        let mut i = start;
        while i + 8 <= end {
            let v_lo = vld1q_f32(values.as_ptr().add(i));
            let v_hi = vld1q_f32(values.as_ptr().add(i + 4));
            let g_lo = gather4(x, col_indices, col_offset, i);
            let g_hi = gather4(x, col_indices, col_offset, i + 4);
            acc_lo = vaddq_f32(acc_lo, vmulq_f32(v_lo, g_lo));
            acc_hi = vaddq_f32(acc_hi, vmulq_f32(v_hi, g_hi));
            i += 8;
        }
        let mut tail = 0.0 as Scalar;
        for j in i..end {
            tail += values[j] * x[col_indices[j] as usize + col_offset];
        }
        hsum4(vaddq_f32(acc_lo, acc_hi)) + tail
    }
}

/// One row's nnz-lane dot, dispatched on the resolved backend.  The match is
/// a predictable per-row jump; the expensive decision (feature detection)
/// already happened at kernel build time.
#[inline]
pub fn row_dot_nnz(
    simd: &ResolvedSimd,
    values: &[Scalar],
    col_indices: &[u32],
    x: &[Scalar],
    col_offset: usize,
    start: usize,
    end: usize,
) -> Scalar {
    match (simd.backend, simd.lanes) {
        #[cfg(target_arch = "x86_64")]
        (Backend::Avx2, 8) => unsafe {
            // SAFETY: Backend::Avx2 is only resolved after a positive
            // runtime AVX2 probe.
            avx2::row_dot_nnz8(
                values,
                col_indices,
                x,
                col_offset,
                start,
                end,
                simd.prefetch,
            )
        },
        #[cfg(target_arch = "x86_64")]
        (Backend::Avx2, 4) => unsafe {
            // SAFETY: as above.
            avx2::row_dot_nnz4(
                values,
                col_indices,
                x,
                col_offset,
                start,
                end,
                simd.prefetch,
            )
        },
        #[cfg(target_arch = "aarch64")]
        (Backend::Neon, 8) => unsafe {
            // SAFETY: Backend::Neon is only resolved after a positive
            // runtime NEON probe.
            neon::row_dot_nnz8(
                values,
                col_indices,
                x,
                col_offset,
                start,
                end,
                simd.prefetch,
            )
        },
        #[cfg(target_arch = "aarch64")]
        (Backend::Neon, 4) => unsafe {
            // SAFETY: as above.
            neon::row_dot_nnz4(
                values,
                col_indices,
                x,
                col_offset,
                start,
                end,
                simd.prefetch,
            )
        },
        (_, 8) => row_dot_nnz_portable::<8>(
            values,
            col_indices,
            x,
            col_offset,
            start,
            end,
            simd.prefetch,
        ),
        (_, 4) => row_dot_nnz_portable::<4>(
            values,
            col_indices,
            x,
            col_offset,
            start,
            end,
            simd.prefetch,
        ),
        (_, 2) => row_dot_nnz_portable::<2>(
            values,
            col_indices,
            x,
            col_offset,
            start,
            end,
            simd.prefetch,
        ),
        _ => {
            let mut acc = 0.0 as Scalar;
            for idx in start..end {
                acc += values[idx] * x[col_indices[idx] as usize + col_offset];
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams(n: usize, cols: usize, seed: u64) -> (Vec<Scalar>, Vec<u32>, Vec<Scalar>) {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let values: Vec<Scalar> = (0..n)
            .map(|_| (next() % 1000) as Scalar / 500.0 - 1.0)
            .collect();
        let col_indices: Vec<u32> = (0..n).map(|_| (next() % cols as u64) as u32).collect();
        let x: Vec<Scalar> = (0..cols)
            .map(|_| (next() % 1000) as Scalar / 250.0 - 2.0)
            .collect();
        (values, col_indices, x)
    }

    fn scalar_dot(values: &[Scalar], cols: &[u32], x: &[Scalar], s: usize, e: usize) -> Scalar {
        let mut acc = 0.0;
        for i in s..e {
            acc += values[i] * x[cols[i] as usize];
        }
        acc
    }

    #[test]
    fn portable_lane_dots_match_scalar_within_tolerance() {
        let (values, cols, x) = streams(513, 97, 42);
        for end in [0, 1, 5, 8, 13, 64, 513] {
            let reference = scalar_dot(&values, &cols, &x, 0, end);
            for (l, got) in [
                (
                    2,
                    row_dot_nnz_portable::<2>(&values, &cols, &x, 0, 0, end, 0),
                ),
                (
                    4,
                    row_dot_nnz_portable::<4>(&values, &cols, &x, 0, 0, end, 4),
                ),
                (
                    8,
                    row_dot_nnz_portable::<8>(&values, &cols, &x, 0, 0, end, 16),
                ),
            ] {
                assert!(
                    (got - reference).abs() <= 1e-3 * reference.abs().max(1.0),
                    "lanes={l} end={end}: {got} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn hardware_and_portable_nnz_lanes_are_bit_identical() {
        let (values, cols, x) = streams(1027, 211, 7);
        for lanes in [4usize, 8] {
            let hw = ResolvedSimd {
                lanes,
                mapping: SimdLaneMapping::Nnz,
                prefetch: 8,
                backend: match cpu_features::detect_hardware() {
                    SimdSupport::Avx2 => Backend::Avx2,
                    SimdSupport::Neon => Backend::Neon,
                    SimdSupport::None => return, // nothing to compare on this host
                },
            };
            for end in [3, 7, 8, 9, 64, 1000, 1027] {
                let hw_dot = row_dot_nnz(&hw, &values, &cols, &x, 0, 0, end);
                let portable = match lanes {
                    4 => row_dot_nnz_portable::<4>(&values, &cols, &x, 0, 0, end, 0),
                    _ => row_dot_nnz_portable::<8>(&values, &cols, &x, 0, 0, end, 0),
                };
                assert_eq!(
                    hw_dot.to_bits(),
                    portable.to_bits(),
                    "lanes={lanes} end={end}: hardware {hw_dot} != portable {portable}"
                );
            }
        }
    }

    #[test]
    fn row_lane_dots_are_bitwise_scalar() {
        let (values, cols, x) = streams(256, 64, 9);
        // Four rows of unequal lengths starting back-to-back.
        let ranges = [(0usize, 13usize), (13, 13), (13, 40), (40, 96)];
        let mut out = [0.0 as Scalar; 4];
        rows_dot_row_lanes::<4>(&values, &cols, &x, 0, &ranges, &mut out, 8);
        for (l, &(s, e)) in ranges.iter().enumerate() {
            let reference = scalar_dot(&values, &cols, &x, s, e);
            assert_eq!(
                out[l].to_bits(),
                reference.to_bits(),
                "lane {l}: {} != scalar {reference}",
                out[l]
            );
        }
    }

    #[test]
    fn hsum_tree_matches_documented_shape() {
        let acc = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        // ((1+16)+(4+64)) + ((2+32)+(8+128)) = 255 for these powers of two.
        assert_eq!(hsum_tree::<8>(&acc), 255.0);
        assert_eq!(hsum_tree::<4>(&[1.0, 2.0, 4.0, 8.0]), 15.0);
        assert_eq!(hsum_tree::<2>(&[1.5, 2.5]), 4.0);
    }

    #[test]
    fn resolve_honours_mode_and_plan() {
        let vec_plan = SimdPlan {
            lanes: 8,
            lane_mapping: SimdLaneMapping::Nnz,
            prefetch_distance: 16,
        };
        let forced = ResolvedSimd::resolve(&vec_plan, SimdMode::ForceScalar);
        assert!(!forced.is_vectorized());
        assert_eq!(forced.label(), "scalar");

        let auto = ResolvedSimd::resolve(&vec_plan, SimdMode::Auto);
        if !cpu_features::force_scalar() {
            assert_eq!(auto.lanes, 8);
            assert_eq!(auto.prefetch, 16);
            assert!(auto.label().contains("nnz-x8"));
        }

        let scalar_plan = SimdPlan::scalar();
        assert!(!ResolvedSimd::resolve(&scalar_plan, SimdMode::Auto).is_vectorized());

        // Row lanes resolve to the portable backend everywhere.
        let row_plan = SimdPlan {
            lanes: 4,
            lane_mapping: SimdLaneMapping::Rows,
            prefetch_distance: 0,
        };
        let row = ResolvedSimd::resolve(&row_plan, SimdMode::Auto);
        if !cpu_features::force_scalar() {
            assert_eq!(row.backend, Backend::Portable);
            assert_eq!(row.label(), "portable-row-x4");
        }
    }

    #[test]
    fn nan_propagates_through_the_horizontal_add() {
        let (values, mut cols, mut x) = streams(64, 32, 11);
        x[5] = Scalar::NAN;
        cols[17] = 5; // one lane in the middle hits the NaN
        let got = row_dot_nnz_portable::<8>(&values, &cols, &x, 0, 0, 64, 0);
        assert!(got.is_nan(), "NaN must survive the lane reduction tree");
    }
}
