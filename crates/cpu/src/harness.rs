//! Steady-state wall-clock measurement: warmup + min-of-N.
//!
//! One execution of a small kernel is dominated by cold caches and scheduler
//! noise.  The harness therefore discards `warmup` executions, times `runs`
//! more, and reports the **minimum** — the standard steady-state estimator
//! for short kernels (the mean and maximum ride along for dispersion).  The
//! same harness times generated kernels and the `alpha-baselines` native
//! kernels, so "generated vs CSR/ELL/HYB/merge" comparisons are
//! apples-to-apples.

use crate::kernel::NativeKernel;
use alpha_gpu::PerfReport;
use alpha_matrix::Scalar;
use alpha_search::EvaluatorId;
use std::time::Instant;

/// Device label measured reports carry (there is exactly one "device": the
/// host CPU the process runs on).
pub const NATIVE_DEVICE_LABEL: &str = "host-cpu";

/// Warmup + min-of-N wall-clock timing parameters.
///
/// The parameters are part of a measurement's *identity*: they are folded
/// into evaluation cache keys and recorded in persisted winners via
/// [`EvaluatorId::Native`], because a min-of-50 number is a different
/// experiment than a min-of-3 one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingHarness {
    /// Executions discarded before timing starts.
    pub warmup: u32,
    /// Timed executions (at least 1 is always performed).
    pub runs: u32,
}

impl Default for TimingHarness {
    fn default() -> Self {
        TimingHarness { warmup: 2, runs: 5 }
    }
}

impl TimingHarness {
    /// A minimal harness (no warmup, single run) for tests and tiny search
    /// budgets where per-candidate cost matters more than timing fidelity.
    pub fn quick() -> Self {
        TimingHarness { warmup: 0, runs: 1 }
    }

    /// The durable identity of measurements taken with these parameters.
    pub fn evaluator_id(self) -> EvaluatorId {
        EvaluatorId::Native {
            warmup: self.warmup,
            runs: self.runs.max(1),
        }
    }

    /// Times `f` (one call = one kernel execution) and summarises the runs.
    /// `useful_flops` and `threads` are echoed into the report.
    pub fn measure<F: FnMut()>(
        self,
        useful_flops: u64,
        threads: usize,
        mut f: F,
    ) -> MeasuredReport {
        for _ in 0..self.warmup {
            f();
        }
        let runs = self.runs.max(1);
        let mut samples_us = Vec::with_capacity(runs as usize);
        for _ in 0..runs {
            let start = Instant::now();
            f();
            samples_us.push(start.elapsed().as_secs_f64() * 1e6);
        }
        // Every statistic below is order-independent, so the samples are
        // sorted in place (no second buffer).
        samples_us.sort_by(f64::total_cmp);
        let min_us = samples_us[0];
        let max_us = *samples_us.last().expect("runs >= 1");
        let mean_us = samples_us.iter().sum::<f64>() / runs as f64;
        let median_us = if samples_us.len() % 2 == 1 {
            samples_us[samples_us.len() / 2]
        } else {
            (samples_us[samples_us.len() / 2 - 1] + samples_us[samples_us.len() / 2]) / 2.0
        };
        // Population standard deviation of the trials: the harness reports
        // the dispersion of *these* runs, not an estimate of a wider
        // population (0 for a single run, by construction).
        let stddev_us = (samples_us
            .iter()
            .map(|&us| (us - mean_us) * (us - mean_us))
            .sum::<f64>()
            / runs as f64)
            .sqrt();
        MeasuredReport {
            min_us,
            mean_us,
            median_us,
            max_us,
            stddev_us,
            warmup: self.warmup,
            runs,
            useful_flops,
            threads,
            gflops: if min_us > 0.0 {
                useful_flops as f64 / min_us / 1e3
            } else {
                0.0
            },
        }
    }

    /// Times a lowered kernel end to end on the process-wide persistent
    /// pool: the output buffer is preallocated and reused across every
    /// warmup and timed rep, and no rep spawns a thread — the measurement
    /// is allocation-free *and* dispatch-amortised.  The first execution
    /// also validates the input dimensions.
    pub fn measure_kernel(
        self,
        kernel: &NativeKernel,
        x: &[Scalar],
        threads: usize,
    ) -> Result<MeasuredReport, String> {
        self.measure_kernel_with_pool(kernel, x, threads, alpha_parallel::Pool::shared())
    }

    /// [`TimingHarness::measure_kernel`] on an explicit persistent pool
    /// (e.g. an evaluator's private pool, so measurements are not perturbed
    /// by unrelated traffic on the shared one).
    pub fn measure_kernel_with_pool(
        self,
        kernel: &NativeKernel,
        x: &[Scalar],
        threads: usize,
        pool: &alpha_parallel::Pool,
    ) -> Result<MeasuredReport, String> {
        let mut y = vec![0.0; kernel.rows()];
        kernel.run_into_with_pool(x, &mut y, threads, pool)?;
        let resolved = crate::kernel::effective_workers_pooled(threads, kernel.nnz());
        Ok(self.measure(kernel.useful_flops(), resolved, || {
            kernel
                .run_into_with_pool(x, &mut y, threads, pool)
                .expect("dimensions validated above");
        }))
    }

    /// Times a kernel with the legacy **spawn-per-call** threading — the
    /// comparison half of every pooled-vs-spawn bench row.  Hot paths and
    /// evaluators should use [`TimingHarness::measure_kernel`].
    pub fn measure_kernel_spawning(
        self,
        kernel: &NativeKernel,
        x: &[Scalar],
        threads: usize,
    ) -> Result<MeasuredReport, String> {
        let mut y = vec![0.0; kernel.rows()];
        kernel.run_into_spawning(x, &mut y, threads)?;
        let resolved = crate::kernel::effective_workers(threads, kernel.nnz());
        Ok(self.measure(kernel.useful_flops(), resolved, || {
            kernel
                .run_into_spawning(x, &mut y, threads)
                .expect("dimensions validated above");
        }))
    }
}

/// The outcome of one steady-state measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredReport {
    /// Fastest timed execution in microseconds — the steady-state estimate
    /// every derived figure uses.
    pub min_us: f64,
    /// Mean of the timed executions in microseconds.
    pub mean_us: f64,
    /// Median of the timed executions in microseconds — with
    /// [`MeasuredReport::stddev_us`], the sample-spread view that lets
    /// benches report their noise instead of only min-of-N.
    pub median_us: f64,
    /// Slowest timed execution in microseconds.
    pub max_us: f64,
    /// Population standard deviation of the timed executions in
    /// microseconds (0 when only one run was timed).
    pub stddev_us: f64,
    /// Warmup executions that were discarded.
    pub warmup: u32,
    /// Timed executions.
    pub runs: u32,
    /// Useful floating-point operations per execution (`2 * nnz`).
    pub useful_flops: u64,
    /// Worker threads the kernel ran with (resolved, never 0).
    pub threads: usize,
    /// Measured throughput in GFLOP/s, from the minimum time.
    pub gflops: f64,
}

impl MeasuredReport {
    /// Converts to the [`PerfReport`] shape the `Evaluator` trait returns, so
    /// measured results flow through the unchanged search/caching/serving
    /// stack.  `format_bytes` is the design's memory footprint.
    pub fn to_perf_report(&self, format_bytes: usize) -> PerfReport {
        PerfReport::from_measured_time(
            NATIVE_DEVICE_LABEL,
            self.min_us,
            self.useful_flops,
            format_bytes,
        )
    }

    /// Relative sample spread: standard deviation over median (0 when the
    /// median is 0).  A quick "how noisy was this measurement" number —
    /// values above ~0.3 mean the min-of-N estimate should be read with
    /// suspicion.
    pub fn noise(&self) -> f64 {
        if self.median_us > 0.0 {
            self.stddev_us / self.median_us
        } else {
            0.0
        }
    }

    /// One-line human-readable summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:>8.2} GFLOPS  {:>9.1} us min ({:.1} median ± {:.1}, {} run(s), {} thread(s))",
            self.gflops, self.min_us, self.median_us, self.stddev_us, self.runs, self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_codegen::{generate, GeneratorOptions};
    use alpha_graph::presets;
    use alpha_matrix::gen;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn measure_counts_warmup_and_runs() {
        let calls = AtomicU32::new(0);
        let harness = TimingHarness { warmup: 3, runs: 4 };
        let report = harness.measure(100, 1, || {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 7);
        assert_eq!(report.runs, 4);
        assert_eq!(report.warmup, 3);
        assert!(report.min_us <= report.mean_us);
        assert!(report.mean_us <= report.max_us);
        assert!(report.min_us <= report.median_us && report.median_us <= report.max_us);
        assert!(report.stddev_us >= 0.0);
        assert!(report.noise() >= 0.0);
        assert!(report.gflops >= 0.0);
    }

    #[test]
    fn single_run_spread_is_degenerate() {
        let report = TimingHarness::quick().measure(10, 1, || {
            std::thread::sleep(std::time::Duration::from_micros(50));
        });
        assert_eq!(report.runs, 1);
        assert_eq!(report.min_us, report.median_us);
        assert_eq!(report.median_us, report.max_us);
        assert_eq!(report.stddev_us, 0.0, "one sample has no spread");
        assert_eq!(report.noise(), 0.0);
    }

    #[test]
    fn spread_statistics_describe_the_samples() {
        // Deterministic, distinguishable "executions": sleep i*100 us on the
        // i-th run so min/median/max/stddev have known ordering.
        let run = std::sync::atomic::AtomicU64::new(0);
        let report = TimingHarness { warmup: 0, runs: 3 }.measure(10, 1, || {
            let i = run.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_micros(100 + 400 * i));
        });
        // Samples ≈ {100, 500, 900} us (plus scheduler noise, all upward).
        assert!(report.min_us >= 100.0 && report.min_us < 450.0);
        assert!(report.median_us > report.min_us);
        assert!(report.max_us > report.median_us);
        assert!(report.stddev_us > 0.0, "distinct samples must show spread");
        assert!(report.summary().contains('±'));
    }

    #[test]
    fn zero_runs_still_measures_once() {
        let calls = AtomicU32::new(0);
        let report = TimingHarness { warmup: 0, runs: 0 }.measure(2, 1, || {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(report.runs, 1);
    }

    #[test]
    fn measure_kernel_produces_a_consistent_report() {
        let matrix = gen::uniform_random(512, 512, 8, 3);
        let generated =
            generate(&presets::csr_scalar(), &matrix, GeneratorOptions::default()).unwrap();
        let kernel = NativeKernel::new(generated.kernel.metadata(), &generated.format);
        let report = TimingHarness::default()
            .measure_kernel(&kernel, &[1.0; 512], 2)
            .unwrap();
        assert!(report.min_us > 0.0);
        assert!(report.gflops > 0.0);
        assert_eq!(report.useful_flops, 2 * matrix.nnz() as u64);
        assert_eq!(report.threads, 2);
        assert!(report.summary().contains("GFLOPS"));

        let perf = report.to_perf_report(kernel.format_bytes());
        assert_eq!(perf.device, NATIVE_DEVICE_LABEL);
        assert_eq!(perf.time_us, report.min_us);
        assert!((perf.gflops - report.gflops).abs() < 1e-9);
    }

    #[test]
    fn harness_parameters_are_the_measurement_identity() {
        let a = TimingHarness { warmup: 1, runs: 3 }.evaluator_id();
        let b = TimingHarness {
            warmup: 1,
            runs: 50,
        }
        .evaluator_id();
        assert_ne!(a, b);
        assert_ne!(a.salt(42), b.salt(42));
        assert_ne!(a.salt(42), alpha_search::EvaluatorId::Simulated.salt(42));
        assert!(a.is_native());
        assert_eq!(a.label(), "native");
    }

    #[test]
    fn wrong_input_length_is_an_error_not_a_panic() {
        let matrix = gen::uniform_random(64, 64, 4, 1);
        let generated =
            generate(&presets::csr_scalar(), &matrix, GeneratorOptions::default()).unwrap();
        let kernel = NativeKernel::new(generated.kernel.metadata(), &generated.format);
        assert!(TimingHarness::quick()
            .measure_kernel(&kernel, &[1.0; 63], 1)
            .is_err());
    }
}
