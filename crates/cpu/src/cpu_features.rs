//! Runtime probe of the host's SIMD capability.
//!
//! The vectorized microkernels in [`crate::simd`] are selected **per kernel
//! build**, not per compile: the same binary runs the AVX2 gather path on a
//! machine that has it and falls back to portable lane code everywhere else.
//! This module is the single source of truth for that decision, and its
//! [`summary`] string is recorded in `BENCH_results.json` so measurements
//! from different hosts stay distinguishable.
//!
//! Setting the environment variable [`NO_SIMD_ENV`] (to any non-empty value
//! other than `0`) force-disables vectorization process-wide — CI uses this
//! to keep the scalar fallback exercised on hosts that do have AVX2.

use std::sync::OnceLock;

/// Environment variable that force-disables SIMD execution when set to a
/// non-empty value other than `0` (e.g. `ALPHA_CPU_NO_SIMD=1`).
pub const NO_SIMD_ENV: &str = "ALPHA_CPU_NO_SIMD";

/// Environment variable that force-disables the monomorphized kernel library
/// when set to a non-empty value other than `0`
/// (e.g. `ALPHA_CPU_NO_SPECIALIZE=1`): every kernel build falls back to the
/// interpreted executor (counted as
/// `cpu_kernel_fallback_total{reason="forced"}`).  CI uses this to keep the
/// interpreted path exercised end to end.
pub const NO_SPECIALIZE_ENV: &str = "ALPHA_CPU_NO_SPECIALIZE";

/// Which vector extension the host offers to the microkernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdSupport {
    /// x86_64 AVX2: 8×f32 vectors with hardware gather.
    Avx2,
    /// aarch64 NEON: 4×f32 vectors (gathers emulated with lane loads).
    Neon,
    /// No usable vector extension; lane kernels run as portable code.
    None,
}

impl SimdSupport {
    /// Short label used in bench records (`avx2` / `neon` / `scalar`).
    pub fn label(self) -> &'static str {
        match self {
            SimdSupport::Avx2 => "avx2",
            SimdSupport::Neon => "neon",
            SimdSupport::None => "scalar",
        }
    }
}

/// Raw hardware probe, ignoring the [`NO_SIMD_ENV`] override.  The answer
/// cannot change over a process lifetime, so it is cached.
pub fn detect_hardware() -> SimdSupport {
    static DETECTED: OnceLock<SimdSupport> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdSupport::Avx2;
            }
            SimdSupport::None
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return SimdSupport::Neon;
            }
            SimdSupport::None
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            SimdSupport::None
        }
    })
}

/// True when [`NO_SIMD_ENV`] requests scalar-only execution.  Read on every
/// call (kernel builds are cold), so tests and harnesses can toggle it.
pub fn force_scalar() -> bool {
    match std::env::var(NO_SIMD_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// True when [`NO_SPECIALIZE_ENV`] requests interpreted-only execution.
/// Read on every call (kernel builds are cold), so tests and harnesses can
/// toggle it.
pub fn no_specialize() -> bool {
    match std::env::var(NO_SPECIALIZE_ENV) {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The SIMD support level execution should actually use: the hardware probe,
/// unless the environment override demands scalar.
pub fn active() -> SimdSupport {
    if force_scalar() {
        SimdSupport::None
    } else {
        detect_hardware()
    }
}

/// One-line host description for bench records, e.g. `x86_64:avx2` or
/// `x86_64:scalar(forced)`.
pub fn summary() -> String {
    let arch = std::env::consts::ARCH;
    if force_scalar() {
        format!("{arch}:scalar(forced)")
    } else {
        format!("{arch}:{}", detect_hardware().label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable_and_labelled() {
        let first = detect_hardware();
        assert_eq!(first, detect_hardware());
        assert!(["avx2", "neon", "scalar"].contains(&first.label()));
    }

    #[test]
    fn summary_names_the_architecture() {
        assert!(summary().starts_with(std::env::consts::ARCH));
    }

    #[test]
    fn x86_hosts_with_avx2_report_it() {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(detect_hardware(), SimdSupport::Avx2);
        }
    }
}
