//! `alpha-baselines` — the artificial (human-designed) SpMV formats the paper
//! compares against (Section VII-B), implemented on the same simulator as the
//! machine-designed kernels so comparisons are apples-to-apples.
//!
//! * Root-format kernels: CSR-scalar, CSR-vector, cuSPARSE-style adaptive
//!   CSR, COO, ELL.
//! * Derived formats: SELL, row-grouped CSR, CSR-Adaptive, ACSR, CSR5,
//!   merge-based CSR.
//! * Hybrid: HYB (ELL + COO overflow).
//! * The tensor-compiler baseline: a TACO-like generic row-parallel kernel.
//! * The Perfect Format Selector (PFS): the paper's stand-in for an
//!   up-to-date traditional auto-tuner — run every candidate, keep the best.

pub mod acsr;
pub mod coo;
pub mod csr;
pub mod csr5;
pub mod csr_adaptive;
pub mod ell;
pub mod hyb;
pub mod merge;
pub mod native;
pub mod pfs;
pub mod row_grouped;
pub mod taco;

pub use acsr::AcsrKernel;
pub use coo::CooKernel;
pub use csr::{CsrScalarKernel, CsrVectorKernel, CusparseCsrKernel};
pub use csr5::Csr5Kernel;
pub use csr_adaptive::CsrAdaptiveKernel;
pub use ell::{EllKernel, SellKernel};
pub use hyb::HybKernel;
pub use merge::MergeCsrKernel;
pub use native::{native_set, NativeBaselineKernel};
pub use pfs::{run_pfs, PfsOutcome};
pub use row_grouped::RowGroupedCsrKernel;
pub use taco::TacoKernel;

use alpha_gpu::SpmvKernel;
use alpha_matrix::CsrMatrix;

/// Identifier of a baseline format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// CSR, one row per thread (CSR-scalar).
    CsrScalar,
    /// CSR, one warp per row (CSR-vector).
    CsrVector,
    /// cuSPARSE-style CSR with a lightweight scalar/vector switch.
    CusparseCsr,
    /// cuSPARSE-style COO with atomics.
    Coo,
    /// ELLPACK padded to the global maximum row length.
    Ell,
    /// Sliced ELLPACK (SELL).
    Sell,
    /// HYB: ELL part plus COO overflow.
    Hyb,
    /// ACSR: row-length binning.
    Acsr,
    /// CSR-Adaptive (CSR-Stream shared-memory reduction).
    CsrAdaptive,
    /// CSR5 (nnz tiles, segmented sum).
    Csr5,
    /// Merge-based CSR.
    Merge,
    /// Row-grouped CSR.
    RowGroupedCsr,
    /// TACO-like tensor-compiler output.
    Taco,
}

impl Baseline {
    /// Human-readable name used in reports (matches the paper's labels).
    pub fn name(self) -> &'static str {
        match self {
            Baseline::CsrScalar => "CSR-scalar",
            Baseline::CsrVector => "CSR-vector",
            Baseline::CusparseCsr => "cuSPARSE-CSR",
            Baseline::Coo => "COO",
            Baseline::Ell => "ELL",
            Baseline::Sell => "SELL",
            Baseline::Hyb => "HYB",
            Baseline::Acsr => "ACSR",
            Baseline::CsrAdaptive => "CSR-Adaptive",
            Baseline::Csr5 => "CSR5",
            Baseline::Merge => "Merge",
            Baseline::RowGroupedCsr => "row-grouped CSR",
            Baseline::Taco => "TACO",
        }
    }

    /// The five state-of-the-art artificial formats of Figure 9.
    pub fn figure9_set() -> Vec<Baseline> {
        vec![
            Baseline::Acsr,
            Baseline::CsrAdaptive,
            Baseline::Csr5,
            Baseline::Merge,
            Baseline::Hyb,
        ]
    }

    /// The ten formats the Perfect Format Selector chooses from
    /// (Section VII-B): the five state-of-the-art formats, three root formats
    /// from cuSPARSE, and two derived formats.
    pub fn pfs_set() -> Vec<Baseline> {
        vec![
            Baseline::Acsr,
            Baseline::CsrAdaptive,
            Baseline::Csr5,
            Baseline::Merge,
            Baseline::Hyb,
            Baseline::Ell,
            Baseline::Coo,
            Baseline::CusparseCsr,
            Baseline::Sell,
            Baseline::RowGroupedCsr,
        ]
    }

    /// Builds the kernel for this baseline from a CSR matrix.
    pub fn build(self, matrix: &CsrMatrix) -> Box<dyn SpmvKernel> {
        match self {
            Baseline::CsrScalar => Box::new(CsrScalarKernel::new(matrix.clone())),
            Baseline::CsrVector => Box::new(CsrVectorKernel::new(matrix.clone())),
            Baseline::CusparseCsr => Box::new(CusparseCsrKernel::new(matrix.clone())),
            Baseline::Coo => Box::new(CooKernel::new(matrix)),
            Baseline::Ell => Box::new(EllKernel::new(matrix)),
            Baseline::Sell => Box::new(SellKernel::new(matrix, 32)),
            Baseline::Hyb => Box::new(HybKernel::new(matrix)),
            Baseline::Acsr => Box::new(AcsrKernel::new(matrix)),
            Baseline::CsrAdaptive => Box::new(CsrAdaptiveKernel::new(matrix.clone())),
            Baseline::Csr5 => Box::new(Csr5Kernel::new(matrix.clone(), 16)),
            Baseline::Merge => Box::new(MergeCsrKernel::new(matrix.clone())),
            Baseline::RowGroupedCsr => Box::new(RowGroupedCsrKernel::new(matrix)),
            Baseline::Taco => Box::new(TacoKernel::new(matrix.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::{DeviceProfile, GpuSim};
    use alpha_matrix::{gen, DenseVector};

    /// Every baseline must compute the correct SpMV on every pattern family.
    #[test]
    fn all_baselines_are_correct() {
        let sim = GpuSim::new(DeviceProfile::test_profile());
        for family in gen::PatternFamily::ALL {
            let matrix = family.generate(256, 6, 13);
            let x = DenseVector::random(matrix.cols(), 99);
            let expected = matrix.spmv(x.as_slice()).unwrap();
            for baseline in Baseline::pfs_set().into_iter().chain([
                Baseline::CsrScalar,
                Baseline::CsrVector,
                Baseline::Taco,
            ]) {
                let kernel = baseline.build(&matrix);
                let result = sim
                    .run(kernel.as_ref(), x.as_slice())
                    .unwrap_or_else(|e| panic!("{} failed: {e}", baseline.name()));
                assert!(
                    DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
                    "{} produced wrong results on {}",
                    baseline.name(),
                    family.name()
                );
            }
        }
    }

    #[test]
    fn figure9_set_matches_paper() {
        let names: Vec<&str> = Baseline::figure9_set().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["ACSR", "CSR-Adaptive", "CSR5", "Merge", "HYB"]);
    }

    #[test]
    fn pfs_set_has_ten_formats() {
        assert_eq!(Baseline::pfs_set().len(), 10);
    }
}
