//! TACO-like baseline: the CUDA code a general tensor-algebra compiler emits
//! for `y(i) = A(i,j) * x(j)` over a CSR-level-format tensor.
//!
//! The paper (Section VII-E) attributes TACO's weak SpMV performance to two
//! causes: its general IR covers only basic optimisations (no format
//! specialisation, no load balancing for irregular rows) and it does not use
//! GPU-specific features (warp shuffles, shared-memory staging, occupancy
//! tuning).  The kernel here mirrors that: one thread per row, uncoalesced
//! streams, per-element index arithmetic from the generic iteration lattice,
//! a small thread block, and scattered x gathers.

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel};
use alpha_matrix::CsrMatrix;

/// Small block size: the compiler does not tune occupancy per matrix.
const BLOCK_DIM: usize = 32;
/// Extra index-arithmetic operations per non-zero from the generic merged
/// iteration code TACO emits (position variables, while-loop guards).
const LATTICE_OVERHEAD_OPS: usize = 6;

/// TACO-style generic CSR SpMV.
pub struct TacoKernel {
    matrix: CsrMatrix,
}

impl TacoKernel {
    /// Wraps a CSR matrix (TACO's `{dense, compressed}` level format).
    pub fn new(matrix: CsrMatrix) -> Self {
        TacoKernel { matrix }
    }
}

impl SpmvKernel for TacoKernel {
    fn name(&self) -> String {
        "TACO".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.matrix.rows().div_ceil(BLOCK_DIM).max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let base = block_id * BLOCK_DIM;
        for tid in 0..BLOCK_DIM {
            let row = base + tid;
            if row >= self.matrix.rows() {
                break;
            }
            ctx.thread(tid);
            let range = self.matrix.row_range(row);
            ctx.load_matrix_stream(Access::WarpCoalesced, 2, 4);
            if range.is_empty() {
                continue;
            }
            let len = range.len();
            // Generic lowering: per-thread strided access, no coalescing, and
            // one x element gathered at a time (no vectorised gather).
            ctx.load_matrix_stream(Access::ThreadContiguous, len, 4);
            ctx.load_matrix_stream(Access::ThreadContiguous, len, 4);
            let mut acc = 0.0;
            for idx in range {
                let col = self.matrix.col_indices()[idx] as usize;
                ctx.gather_x_cost(&[col as u32]);
                acc += self.matrix.values()[idx] * ctx.x(col);
            }
            ctx.mul_add(len);
            ctx.alu(len * LATTICE_OVERHEAD_OPS);
            ctx.store_y(row, acc);
        }
    }

    fn format_bytes(&self) -> usize {
        self.matrix.format_bytes()
    }

    fn useful_flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    fn input_cols(&self) -> usize {
        self.matrix.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn taco_is_correct() {
        let matrix = gen::powerlaw(300, 300, 8, 2.0, 5);
        let kernel = TacoKernel::new(matrix.clone());
        let x = DenseVector::random(300, 6);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let r = sim.run(&kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
    }

    #[test]
    fn taco_is_much_slower_than_tuned_baselines() {
        let matrix = gen::powerlaw(16_384, 16_384, 16, 1.9, 7);
        let x = DenseVector::ones(16_384);
        let sim = GpuSim::new(DeviceProfile::a100());
        let taco = sim
            .run(&TacoKernel::new(matrix.clone()), x.as_slice())
            .unwrap()
            .report
            .gflops;
        let csr5 = sim
            .run(
                &crate::csr5::Csr5Kernel::new(matrix.clone(), 16),
                x.as_slice(),
            )
            .unwrap()
            .report
            .gflops;
        assert!(
            csr5 > 4.0 * taco,
            "expected a large gap between CSR5 ({csr5}) and TACO ({taco}) on irregular data"
        );
    }
}
