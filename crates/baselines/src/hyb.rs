//! HYB kernel (cuSPARSE HYB): an ELL part holding up to `k` entries per row
//! (with `k` chosen near the average row length) plus a COO part holding the
//! overflow entries of long rows, reduced with atomics.

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel};
use alpha_matrix::{CsrMatrix, Scalar};

const BLOCK_DIM: usize = 128;
const COO_NNZ_PER_THREAD: usize = 8;

/// HYB = ELL(width k) + COO(overflow).
pub struct HybKernel {
    rows: usize,
    cols: usize,
    nnz: usize,
    /// ELL width (entries per row stored in the regular part).
    ell_width: usize,
    /// ELL part: per-row `(cols, values)` truncated to `ell_width`.
    ell_cols: Vec<Vec<u32>>,
    ell_values: Vec<Vec<Scalar>>,
    /// COO overflow triplets.
    coo_rows: Vec<u32>,
    coo_cols: Vec<u32>,
    coo_values: Vec<Scalar>,
}

impl HybKernel {
    /// Splits the matrix into the ELL and COO parts.  The ELL width follows
    /// the cuSPARSE heuristic of covering roughly the average row length.
    pub fn new(matrix: &CsrMatrix) -> Self {
        let avg = if matrix.rows() == 0 {
            0
        } else {
            (matrix.nnz() as f64 / matrix.rows() as f64).ceil() as usize
        };
        let ell_width = avg.max(1);
        let mut ell_cols = Vec::with_capacity(matrix.rows());
        let mut ell_values = Vec::with_capacity(matrix.rows());
        let mut coo_rows = Vec::new();
        let mut coo_cols = Vec::new();
        let mut coo_values = Vec::new();
        for row in 0..matrix.rows() {
            let range = matrix.row_range(row);
            let cols = &matrix.col_indices()[range.clone()];
            let values = &matrix.values()[range];
            let cut = cols.len().min(ell_width);
            ell_cols.push(cols[..cut].to_vec());
            ell_values.push(values[..cut].to_vec());
            for i in cut..cols.len() {
                coo_rows.push(row as u32);
                coo_cols.push(cols[i]);
                coo_values.push(values[i]);
            }
        }
        HybKernel {
            rows: matrix.rows(),
            cols: matrix.cols(),
            nnz: matrix.nnz(),
            ell_width,
            ell_cols,
            ell_values,
            coo_rows,
            coo_cols,
            coo_values,
        }
    }

    /// Fraction of non-zeros that fell into the COO overflow part.
    pub fn coo_fraction(&self) -> f64 {
        if self.nnz == 0 {
            0.0
        } else {
            self.coo_values.len() as f64 / self.nnz as f64
        }
    }

    fn ell_blocks(&self) -> usize {
        self.rows.div_ceil(BLOCK_DIM).max(1)
    }

    fn coo_blocks(&self) -> usize {
        let threads = self.coo_values.len().div_ceil(COO_NNZ_PER_THREAD);
        threads.div_ceil(BLOCK_DIM)
    }
}

impl SpmvKernel for HybKernel {
    fn name(&self) -> String {
        "HYB".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.ell_blocks() + self.coo_blocks(), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        if block_id < self.ell_blocks() {
            // ELL part: one thread per row, width ell_width (padded).
            let base = block_id * BLOCK_DIM;
            for tid in 0..BLOCK_DIM {
                let row = base + tid;
                if row >= self.rows {
                    break;
                }
                ctx.thread(tid);
                ctx.load_matrix_stream(Access::WarpCoalesced, self.ell_width, 4);
                ctx.load_matrix_stream(Access::WarpCoalesced, self.ell_width, 4);
                ctx.mul_add(self.ell_width);
                let cols = &self.ell_cols[row];
                if !cols.is_empty() {
                    ctx.gather_x_cost(cols);
                }
                let mut acc = 0.0;
                for (v, &c) in self.ell_values[row].iter().zip(cols) {
                    acc += v * ctx.x(c as usize);
                }
                ctx.store_y(row, acc);
            }
        } else {
            // COO overflow part with atomics.
            let coo_block = block_id - self.ell_blocks();
            let nnz = self.coo_values.len();
            let first_thread = coo_block * BLOCK_DIM;
            for tid in 0..BLOCK_DIM {
                let start = (first_thread + tid) * COO_NNZ_PER_THREAD;
                if start >= nnz {
                    break;
                }
                let end = (start + COO_NNZ_PER_THREAD).min(nnz);
                let len = end - start;
                ctx.thread(tid);
                ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
                ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
                ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
                ctx.gather_x_cost(&self.coo_cols[start..end]);
                ctx.mul_add(len);
                for i in start..end {
                    let product = self.coo_values[i] * ctx.x(self.coo_cols[i] as usize);
                    ctx.atomic_add_y(self.coo_rows[i] as usize, product);
                }
            }
        }
    }

    fn format_bytes(&self) -> usize {
        self.rows * self.ell_width * 8 + self.coo_values.len() * 12
    }

    fn useful_flops(&self) -> u64 {
        2 * self.nnz as u64
    }

    fn output_rows(&self) -> usize {
        self.rows
    }

    fn input_cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn hyb_is_correct_on_irregular_matrices() {
        let matrix = gen::powerlaw(500, 500, 10, 1.9, 3);
        let kernel = HybKernel::new(&matrix);
        assert!(kernel.coo_fraction() > 0.0, "expected a COO overflow part");
        let x = DenseVector::random(500, 4);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let r = sim.run(&kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
    }

    #[test]
    fn regular_matrix_has_no_overflow() {
        let matrix = gen::uniform_random(512, 512, 8, 1);
        let kernel = HybKernel::new(&matrix);
        assert_eq!(kernel.coo_fraction(), 0.0);
        assert_eq!(kernel.coo_blocks(), 0);
    }

    #[test]
    fn hyb_beats_ell_on_matrices_with_a_few_long_rows() {
        // The GL7d19-style pattern (Section VII-H): mostly balanced rows plus
        // a few much longer ones -- decomposition is the right call.
        let matrix = gen::dense_row_blocks(8_192, 8, 4_000, 5);
        let x = DenseVector::ones(8_192);
        let sim = GpuSim::new(DeviceProfile::a100());
        let hyb = sim
            .run(&HybKernel::new(&matrix), x.as_slice())
            .unwrap()
            .report
            .gflops;
        let ell = sim
            .run(&crate::ell::EllKernel::new(&matrix), x.as_slice())
            .unwrap()
            .report
            .gflops;
        assert!(
            hyb > ell,
            "HYB {hyb} should beat ELL {ell} on long-tail rows"
        );
    }
}
