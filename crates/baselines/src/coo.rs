//! COO kernel (cuSPARSE-style): non-zeros are split evenly over threads and
//! every partial product is added to `y` with a global atomic.  Perfect load
//! balance, maximal atomic traffic.

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel};
use alpha_matrix::{CooMatrix, CsrMatrix};

const BLOCK_DIM: usize = 128;
const NNZ_PER_THREAD: usize = 8;

/// COO SpMV with atomics.
pub struct CooKernel {
    coo: CooMatrix,
    rows: usize,
    cols: usize,
}

impl CooKernel {
    /// Converts the CSR matrix into row-major sorted COO.
    pub fn new(matrix: &CsrMatrix) -> Self {
        CooKernel {
            coo: matrix.to_coo(),
            rows: matrix.rows(),
            cols: matrix.cols(),
        }
    }
}

impl SpmvKernel for CooKernel {
    fn name(&self) -> String {
        "COO".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        let threads = self.coo.nnz().div_ceil(NNZ_PER_THREAD).max(1);
        LaunchConfig::new(threads.div_ceil(BLOCK_DIM).max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let nnz = self.coo.nnz();
        let first_thread = block_id * BLOCK_DIM;
        for tid in 0..BLOCK_DIM {
            let start = (first_thread + tid) * NNZ_PER_THREAD;
            if start >= nnz {
                break;
            }
            let end = (start + NNZ_PER_THREAD).min(nnz);
            let len = end - start;
            ctx.thread(tid);
            // Row indices, column indices and values: three coalesced streams.
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.gather_x_cost(&self.coo.col_indices()[start..end]);
            ctx.mul_add(len);
            for i in start..end {
                let row = self.coo.row_indices()[i] as usize;
                let col = self.coo.col_indices()[i] as usize;
                let product = self.coo.values()[i] * ctx.x(col);
                ctx.atomic_add_y(row, product);
            }
        }
    }

    fn format_bytes(&self) -> usize {
        self.coo.nnz() * 12
    }

    fn useful_flops(&self) -> u64 {
        2 * self.coo.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.rows
    }

    fn input_cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn coo_is_correct() {
        let matrix = gen::powerlaw(300, 300, 8, 2.0, 1);
        let kernel = CooKernel::new(&matrix);
        let x = DenseVector::random(300, 5);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let result = sim.run(&kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3));
        assert!(result.report.counters.atomic_ops as usize >= matrix.nnz());
    }

    #[test]
    fn coo_pays_for_atomics_against_csr_scalar_on_regular_matrices() {
        let matrix = gen::uniform_random(8_192, 8_192, 8, 2);
        let x = DenseVector::ones(8_192);
        let sim = GpuSim::new(DeviceProfile::a100());
        let coo = sim
            .run(&CooKernel::new(&matrix), x.as_slice())
            .unwrap()
            .report
            .gflops;
        let csr = sim
            .run(
                &crate::csr::CsrScalarKernel::new(matrix.clone()),
                x.as_slice(),
            )
            .unwrap()
            .report
            .gflops;
        assert!(
            csr > coo * 0.8,
            "COO should not dominate CSR on regular data"
        );
    }
}
