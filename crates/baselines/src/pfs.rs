//! The Perfect Format Selector (PFS).
//!
//! The paper cannot fairly compare against unmaintained traditional
//! auto-tuners, so it defines PFS: an oracle selector that runs SpMV with
//! every candidate artificial format and keeps the fastest — a 100 %-accurate
//! stand-in for the auto-tuning philosophy of SMAT / clSpMV (Section VII-B).

use crate::Baseline;
use alpha_gpu::{GpuSim, PerfReport};
use alpha_matrix::{CsrMatrix, Scalar};

/// The outcome of running the Perfect Format Selector on one matrix.
#[derive(Debug, Clone)]
pub struct PfsOutcome {
    /// The winning format.
    pub best: Baseline,
    /// The winning format's performance report.
    pub best_report: PerfReport,
    /// Every candidate's performance, in the order they were evaluated.
    pub all: Vec<(Baseline, PerfReport)>,
}

impl PfsOutcome {
    /// GFLOPS of the selected format.
    pub fn best_gflops(&self) -> f64 {
        self.best_report.gflops
    }

    /// Performance of a specific candidate, if it was part of the selection.
    pub fn report_for(&self, baseline: Baseline) -> Option<&PerfReport> {
        self.all
            .iter()
            .find(|(b, _)| *b == baseline)
            .map(|(_, r)| r)
    }

    /// Ratio between the best and worst candidate — the "maximum-minimum
    /// performance gap" the paper's introduction quotes (about 10x across
    /// mainstream formats).
    pub fn max_min_gap(&self) -> f64 {
        let worst = self
            .all
            .iter()
            .map(|(_, r)| r.gflops)
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
        self.best_gflops() / worst
    }
}

/// Runs every candidate on the simulator, checks its result against the
/// reference output, and returns the fastest.
///
/// A candidate that produces incorrect results (which would indicate a bug in
/// a baseline implementation) is skipped rather than selected.
pub fn run_pfs(
    sim: &GpuSim,
    matrix: &CsrMatrix,
    x: &[Scalar],
    candidates: &[Baseline],
) -> Result<PfsOutcome, String> {
    let reference = matrix.spmv(x).map_err(|e| e.to_string())?;
    let mut all: Vec<(Baseline, PerfReport)> = Vec::with_capacity(candidates.len());
    for &candidate in candidates {
        let kernel = candidate.build(matrix);
        match sim.run_checked(kernel.as_ref(), x, &reference, 1e-3) {
            Ok(result) => all.push((candidate, result.report)),
            Err(err) => return Err(format!("{}: {err}", candidate.name())),
        }
    }
    let (best, best_report) = all
        .iter()
        .max_by(|a, b| a.1.gflops.partial_cmp(&b.1.gflops).expect("finite gflops"))
        .map(|(b, r)| (*b, r.clone()))
        .ok_or_else(|| "no PFS candidates supplied".to_string())?;
    Ok(PfsOutcome {
        best,
        best_report,
        all,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::DeviceProfile;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn pfs_selects_the_fastest_candidate() {
        let matrix = gen::powerlaw(4_096, 4_096, 12, 1.9, 3);
        let x = DenseVector::ones(4_096);
        let sim = GpuSim::new(DeviceProfile::a100());
        let outcome = run_pfs(&sim, &matrix, x.as_slice(), &Baseline::pfs_set()).unwrap();
        assert_eq!(outcome.all.len(), 10);
        for (_, report) in &outcome.all {
            assert!(outcome.best_gflops() >= report.gflops);
        }
        assert!(outcome.max_min_gap() >= 1.0);
    }

    #[test]
    fn pfs_requires_candidates() {
        let matrix = gen::uniform_random(256, 256, 4, 1);
        let x = DenseVector::ones(256);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        assert!(run_pfs(&sim, &matrix, x.as_slice(), &[]).is_err());
    }

    #[test]
    fn report_for_returns_candidate_results() {
        let matrix = gen::uniform_random(1_024, 1_024, 8, 5);
        let x = DenseVector::ones(1_024);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let outcome = run_pfs(
            &sim,
            &matrix,
            x.as_slice(),
            &[Baseline::Csr5, Baseline::Hyb],
        )
        .unwrap();
        assert!(outcome.report_for(Baseline::Csr5).is_some());
        assert!(outcome.report_for(Baseline::Acsr).is_none());
    }

    #[test]
    fn formats_show_a_wide_performance_gap_on_irregular_data() {
        // The introduction's motivation: an order-of-magnitude gap between
        // the best and worst mainstream format on irregular matrices.
        let matrix = gen::powerlaw(16_384, 16_384, 16, 1.8, 11);
        let x = DenseVector::ones(16_384);
        let sim = GpuSim::new(DeviceProfile::a100());
        let outcome = run_pfs(&sim, &matrix, x.as_slice(), &Baseline::pfs_set()).unwrap();
        assert!(
            outcome.max_min_gap() > 3.0,
            "expected a large best/worst gap, got {:.2}",
            outcome.max_min_gap()
        );
    }
}
