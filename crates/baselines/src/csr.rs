//! CSR kernels: CSR-scalar (one row per thread), CSR-vector (one warp per
//! row) and a cuSPARSE-style kernel that switches between the two based on
//! the average row length.

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel, WARP_SIZE};
use alpha_matrix::CsrMatrix;

const BLOCK_DIM: usize = 128;

/// CSR with one thread per row: simple, but uncoalesced and badly balanced on
/// irregular matrices.
pub struct CsrScalarKernel {
    matrix: CsrMatrix,
}

impl CsrScalarKernel {
    /// Wraps a CSR matrix.
    pub fn new(matrix: CsrMatrix) -> Self {
        CsrScalarKernel { matrix }
    }
}

impl SpmvKernel for CsrScalarKernel {
    fn name(&self) -> String {
        "CSR-scalar".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.matrix.rows().div_ceil(BLOCK_DIM).max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let base = block_id * BLOCK_DIM;
        for tid in 0..BLOCK_DIM {
            let row = base + tid;
            if row >= self.matrix.rows() {
                break;
            }
            ctx.thread(tid);
            let range = self.matrix.row_range(row);
            ctx.load_matrix_stream(Access::WarpCoalesced, 2, 4);
            if range.is_empty() {
                continue;
            }
            let len = range.len();
            ctx.load_matrix_stream(Access::ThreadContiguous, len, 4);
            ctx.load_matrix_stream(Access::ThreadContiguous, len, 4);
            ctx.gather_x_cost(&self.matrix.col_indices()[range.clone()]);
            let mut acc = 0.0;
            for idx in range {
                acc += self.matrix.values()[idx] * ctx.x(self.matrix.col_indices()[idx] as usize);
            }
            ctx.mul_add(len);
            ctx.store_y(row, acc);
        }
    }

    fn format_bytes(&self) -> usize {
        self.matrix.format_bytes()
    }

    fn useful_flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    fn input_cols(&self) -> usize {
        self.matrix.cols()
    }
}

/// CSR with one warp per row: coalesced row streaming plus a shuffle
/// reduction; wasteful on short rows.
pub struct CsrVectorKernel {
    matrix: CsrMatrix,
}

impl CsrVectorKernel {
    /// Wraps a CSR matrix.
    pub fn new(matrix: CsrMatrix) -> Self {
        CsrVectorKernel { matrix }
    }
}

impl SpmvKernel for CsrVectorKernel {
    fn name(&self) -> String {
        "CSR-vector".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        let rows_per_block = BLOCK_DIM / WARP_SIZE;
        LaunchConfig::new(
            self.matrix.rows().div_ceil(rows_per_block).max(1),
            BLOCK_DIM,
        )
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let rows_per_block = BLOCK_DIM / WARP_SIZE;
        let first_row = block_id * rows_per_block;
        for w in 0..rows_per_block {
            let row = first_row + w;
            if row >= self.matrix.rows() {
                break;
            }
            let range = self.matrix.row_range(row);
            let len = range.len();
            let lead = w * WARP_SIZE;
            ctx.thread(lead);
            ctx.load_matrix_stream(Access::WarpCoalesced, 2, 4);
            if len > 0 {
                // Lanes stride through the row together: coalesced.
                let per_lane = len.div_ceil(WARP_SIZE);
                for lane in 0..WARP_SIZE {
                    let seg_start = lane * per_lane;
                    if seg_start >= len {
                        break;
                    }
                    let seg = per_lane.min(len - seg_start);
                    ctx.thread(lead + lane);
                    ctx.load_matrix_stream(Access::WarpCoalesced, seg, 4);
                    ctx.load_matrix_stream(Access::WarpCoalesced, seg, 4);
                    ctx.mul_add(seg);
                }
                ctx.thread(lead);
                ctx.gather_x_cost(&self.matrix.col_indices()[range.clone()]);
                let mut acc = 0.0;
                for idx in range {
                    acc +=
                        self.matrix.values()[idx] * ctx.x(self.matrix.col_indices()[idx] as usize);
                }
                ctx.warp_shuffle_reduce(WARP_SIZE);
                ctx.store_y(row, acc);
            }
        }
    }

    fn format_bytes(&self) -> usize {
        self.matrix.format_bytes()
    }

    fn useful_flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    fn input_cols(&self) -> usize {
        self.matrix.cols()
    }
}

/// cuSPARSE-style CSR: picks scalar or vector execution per matrix from the
/// average row length (a lightweight version of the library's internal
/// heuristics).
pub struct CusparseCsrKernel {
    inner: CsrChoice,
}

enum CsrChoice {
    Scalar(CsrScalarKernel),
    Vector(CsrVectorKernel),
}

impl CusparseCsrKernel {
    /// Chooses the execution scheme from the average row length.
    pub fn new(matrix: CsrMatrix) -> Self {
        let avg = if matrix.rows() == 0 {
            0.0
        } else {
            matrix.nnz() as f64 / matrix.rows() as f64
        };
        let inner = if avg >= WARP_SIZE as f64 / 2.0 {
            CsrChoice::Vector(CsrVectorKernel::new(matrix))
        } else {
            CsrChoice::Scalar(CsrScalarKernel::new(matrix))
        };
        CusparseCsrKernel { inner }
    }

    fn as_kernel(&self) -> &dyn SpmvKernel {
        match &self.inner {
            CsrChoice::Scalar(k) => k,
            CsrChoice::Vector(k) => k,
        }
    }
}

impl SpmvKernel for CusparseCsrKernel {
    fn name(&self) -> String {
        "cuSPARSE-CSR".into()
    }

    fn launch_config(&self, device: &DeviceProfile) -> LaunchConfig {
        self.as_kernel().launch_config(device)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        self.as_kernel().execute_block(block_id, ctx)
    }

    fn format_bytes(&self) -> usize {
        self.as_kernel().format_bytes()
    }

    fn useful_flops(&self) -> u64 {
        self.as_kernel().useful_flops()
    }

    fn output_rows(&self) -> usize {
        self.as_kernel().output_rows()
    }

    fn input_cols(&self) -> usize {
        self.as_kernel().input_cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    fn run(kernel: &dyn SpmvKernel, matrix: &CsrMatrix) -> (Vec<f32>, f64) {
        let x = DenseVector::random(matrix.cols(), 7);
        let sim = GpuSim::new(DeviceProfile::a100());
        let r = sim.run(kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
        (r.y, r.report.gflops)
    }

    #[test]
    fn scalar_and_vector_are_correct() {
        let matrix = gen::powerlaw(500, 500, 12, 2.0, 3);
        run(&CsrScalarKernel::new(matrix.clone()), &matrix);
        run(&CsrVectorKernel::new(matrix.clone()), &matrix);
        run(&CusparseCsrKernel::new(matrix.clone()), &matrix);
    }

    #[test]
    fn vector_beats_scalar_on_long_rows() {
        let matrix = gen::uniform_random(4_096, 4_096, 96, 5);
        let (_, scalar) = run(&CsrScalarKernel::new(matrix.clone()), &matrix);
        let (_, vector) = run(&CsrVectorKernel::new(matrix.clone()), &matrix);
        assert!(
            vector > scalar,
            "vector {vector} should beat scalar {scalar} on long rows"
        );
    }

    #[test]
    fn vector_has_no_advantage_on_very_short_rows() {
        // With two non-zeros per row a warp-per-row kernel wastes almost all
        // of its lanes; the scalar kernel must be at least competitive.
        let matrix = gen::uniform_random(16_384, 16_384, 2, 5);
        let (_, scalar) = run(&CsrScalarKernel::new(matrix.clone()), &matrix);
        let (_, vector) = run(&CsrVectorKernel::new(matrix.clone()), &matrix);
        assert!(
            scalar > 0.8 * vector,
            "scalar {scalar} should be competitive with vector {vector} on short rows"
        );
    }

    #[test]
    fn cusparse_choice_follows_row_length() {
        let short = CusparseCsrKernel::new(gen::uniform_random(256, 256, 2, 1));
        assert!(matches!(short.inner, CsrChoice::Scalar(_)));
        let long = CusparseCsrKernel::new(gen::uniform_random(256, 256, 64, 1));
        assert!(matches!(long.inner, CsrChoice::Vector(_)));
    }
}
