//! Merge-based CSR kernel (Merrill & Garland, SC'16): every thread receives
//! an equal share of the *merge path* over (row offsets x non-zeros), so both
//! row-dominated and nnz-dominated matrices stay balanced.  Compared to CSR5
//! it reads slightly more row-offset metadata but needs no tile transpose.

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel};
use alpha_matrix::CsrMatrix;

const BLOCK_DIM: usize = 128;
/// Merge-path items (row ends + non-zeros) per thread.
const ITEMS_PER_THREAD: usize = 16;

/// Merge-based CSR SpMV.
pub struct MergeCsrKernel {
    matrix: CsrMatrix,
}

impl MergeCsrKernel {
    /// Wraps a CSR matrix.
    pub fn new(matrix: CsrMatrix) -> Self {
        MergeCsrKernel { matrix }
    }

    fn total_items(&self) -> usize {
        self.matrix.rows() + self.matrix.nnz()
    }

    fn threads_total(&self) -> usize {
        self.total_items().div_ceil(ITEMS_PER_THREAD).max(1)
    }

    /// Finds the merge-path coordinate (row, nnz index) of a given diagonal.
    fn path_search(&self, diagonal: usize) -> (usize, usize) {
        let offsets = self.matrix.row_offsets();
        let rows = self.matrix.rows();
        let nnz = self.matrix.nnz();
        let mut lo = diagonal.saturating_sub(nnz);
        let mut hi = diagonal.min(rows);
        while lo < hi {
            let mid = (lo + hi) / 2;
            // Row `mid` is consumed before diagonal position if its end
            // offset is <= the nnz consumed so far on this diagonal.
            if (offsets[mid + 1] as usize) < diagonal - mid {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo, diagonal - lo)
    }
}

impl SpmvKernel for MergeCsrKernel {
    fn name(&self) -> String {
        "Merge".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.threads_total().div_ceil(BLOCK_DIM).max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let total_items = self.total_items();
        let offsets = self.matrix.row_offsets();
        let first_thread = block_id * BLOCK_DIM;
        for tid in 0..BLOCK_DIM {
            let thread = first_thread + tid;
            let diag_start = thread * ITEMS_PER_THREAD;
            if diag_start >= total_items {
                break;
            }
            let diag_end = (diag_start + ITEMS_PER_THREAD).min(total_items);
            ctx.thread(tid);
            // Two merge-path binary searches over the row offsets.
            ctx.alu(2 * ((self.matrix.rows().max(2) as f64).log2() as usize + 1));
            ctx.load_matrix_stream(Access::WarpCoalesced, 4, 4);
            let (start_row, nz_start) = self.path_search(diag_start);
            let (row_end, nz_end) = self.path_search(diag_end);

            // Cost of the streams this thread consumes: non-zero values and
            // columns (coalesced), the touched row offsets, and the x gather.
            let nnz_consumed = nz_end - nz_start;
            let rows_touched = row_end.saturating_sub(start_row) + 1;
            ctx.load_matrix_stream(Access::WarpCoalesced, rows_touched + 1, 4);
            if nnz_consumed > 0 {
                ctx.load_matrix_stream(Access::WarpCoalesced, nnz_consumed, 4);
                ctx.load_matrix_stream(Access::WarpCoalesced, nnz_consumed, 4);
                ctx.gather_x_cost(&self.matrix.col_indices()[nz_start..nz_end]);
                ctx.mul_add(nnz_consumed);
            }

            // Consume the merge path: rows whose end marker lies in this
            // thread's range are flushed directly; the trailing partial row is
            // fixed up with an atomic (the merge-path carry-out).
            let mut row = start_row;
            let mut cur_nz = nz_start;
            let mut acc = 0.0;
            while row < row_end {
                let row_end_off = offsets[row + 1] as usize;
                while cur_nz < row_end_off {
                    acc += self.matrix.values()[cur_nz]
                        * ctx.x(self.matrix.col_indices()[cur_nz] as usize);
                    cur_nz += 1;
                }
                ctx.store_y(row, acc);
                acc = 0.0;
                row += 1;
            }
            while cur_nz < nz_end {
                acc += self.matrix.values()[cur_nz]
                    * ctx.x(self.matrix.col_indices()[cur_nz] as usize);
                cur_nz += 1;
            }
            if row < self.matrix.rows() && acc != 0.0 {
                ctx.atomic_add_y(row, acc);
            }
        }
    }

    fn format_bytes(&self) -> usize {
        self.matrix.format_bytes()
    }

    fn useful_flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    fn input_cols(&self) -> usize {
        self.matrix.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn merge_is_correct_across_families() {
        for family in gen::PatternFamily::ALL {
            let matrix = family.generate(400, 7, 23);
            let kernel = MergeCsrKernel::new(matrix.clone());
            let x = DenseVector::random(matrix.cols(), 3);
            let sim = GpuSim::new(DeviceProfile::test_profile());
            let r = sim.run(&kernel, x.as_slice()).unwrap();
            let expected = matrix.spmv(x.as_slice()).unwrap();
            assert!(
                DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3),
                "wrong result on {}",
                family.name()
            );
        }
    }

    #[test]
    fn merge_handles_empty_rows() {
        // Merge-path is specifically robust to empty rows.
        let mut coo = alpha_matrix::CooMatrix::new(100, 100);
        for r in (0..100).step_by(3) {
            coo.push(r, r, 1.0);
        }
        let matrix = CsrMatrix::from_coo(&coo);
        let kernel = MergeCsrKernel::new(matrix.clone());
        let x = DenseVector::ones(100);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let r = sim.run(&kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
    }

    #[test]
    fn merge_is_balanced_on_irregular_matrices() {
        let matrix = gen::powerlaw(8_192, 8_192, 16, 1.8, 9);
        let x = DenseVector::ones(8_192);
        let sim = GpuSim::new(DeviceProfile::a100());
        let merge = sim
            .run(&MergeCsrKernel::new(matrix.clone()), x.as_slice())
            .unwrap()
            .report;
        let scalar = sim
            .run(
                &crate::csr::CsrScalarKernel::new(matrix.clone()),
                x.as_slice(),
            )
            .unwrap()
            .report;
        assert!(merge.counters.block_imbalance() < scalar.counters.block_imbalance());
        assert!(merge.gflops > scalar.gflops);
    }
}
