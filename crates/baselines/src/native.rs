//! Native CPU implementations of the reference baselines.
//!
//! The simulator kernels in this crate model GPU behaviour; this module runs
//! the same formats **for real** on the host, timed with the *same*
//! [`TimingHarness`] as `alpha-cpu`'s machine-designed kernels — the
//! apples-to-apples other half of every "generated vs CSR/ELL/HYB/merge"
//! measured comparison.
//!
//! Four baselines have native implementations (the classic CPU quartet):
//!
//! * **CSR** — row-parallel scalar loop;
//! * **ELL** — row-major padded storage, fixed trip count per row;
//! * **HYB** — padded ELL part (width ≈ average row length) plus a COO
//!   overflow pass;
//! * **Merge** — nnz-partitioned chunks with row-boundary accumulation.

use crate::Baseline;
use alpha_cpu::{MeasuredReport, TimingHarness};
use alpha_matrix::{CsrMatrix, Scalar};
use alpha_parallel::Executor;

/// The baselines with a native CPU implementation.
pub fn native_set() -> Vec<Baseline> {
    vec![
        Baseline::CsrScalar,
        Baseline::Ell,
        Baseline::Hyb,
        Baseline::Merge,
    ]
}

/// Non-zeros each merge chunk owns (mirrors merge-based CSR's tile size).
const MERGE_NNZ_PER_CHUNK: usize = 256;

enum Imp {
    Csr,
    /// Row-major padded ELL: `width` slots per row, zero-padded.
    Ell {
        width: usize,
        cols: Vec<u32>,
        values: Vec<Scalar>,
    },
    /// HYB: padded ELL part plus COO overflow triplets.
    Hyb {
        width: usize,
        ell_cols: Vec<u32>,
        ell_values: Vec<Scalar>,
        coo: Vec<(u32, u32, Scalar)>,
    },
    Merge,
}

/// A baseline format prepared for native execution: conversion happens once
/// at construction, so the timing harness measures only the SpMV itself.
pub struct NativeBaselineKernel {
    baseline: Baseline,
    matrix: CsrMatrix,
    imp: Imp,
}

impl NativeBaselineKernel {
    /// Prepares `baseline` for native execution.  Returns an error for
    /// baselines without a native implementation (see [`native_set`]).
    pub fn new(baseline: Baseline, matrix: &CsrMatrix) -> Result<Self, String> {
        let imp = match baseline {
            Baseline::CsrScalar => Imp::Csr,
            Baseline::Merge => Imp::Merge,
            Baseline::Ell => {
                let width = matrix.max_row_len().max(1);
                let (cols, values) = pad_rows(matrix, width, 0..matrix.rows());
                Imp::Ell {
                    width,
                    cols,
                    values,
                }
            }
            Baseline::Hyb => {
                // The cuSPARSE heuristic: the ELL part covers roughly the
                // average row length, long rows overflow into COO.
                let rows = matrix.rows().max(1);
                let width = (matrix.nnz() as f64 / rows as f64).ceil().max(1.0) as usize;
                let (ell_cols, ell_values) = pad_rows(matrix, width, 0..matrix.rows());
                let mut coo = Vec::new();
                for row in 0..matrix.rows() {
                    let range = matrix.row_range(row);
                    for idx in range.start + width.min(range.len())..range.end {
                        coo.push((row as u32, matrix.col_indices()[idx], matrix.values()[idx]));
                    }
                }
                Imp::Hyb {
                    width,
                    ell_cols,
                    ell_values,
                    coo,
                }
            }
            other => {
                return Err(format!(
                    "baseline {} has no native CPU implementation",
                    other.name()
                ))
            }
        };
        Ok(NativeBaselineKernel {
            baseline,
            matrix: matrix.clone(),
            imp,
        })
    }

    /// The baseline this kernel implements.
    pub fn baseline(&self) -> Baseline {
        self.baseline
    }

    /// Useful floating-point operations per execution (`2 * nnz`; padding
    /// slots do not count as useful work).
    pub fn useful_flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    /// Runs `y = A·x`, allocating the output.  Pooled like the generated
    /// kernels: repeated runs reuse the process-wide persistent worker pool.
    pub fn run(&self, x: &[Scalar], threads: usize) -> Result<Vec<Scalar>, String> {
        let mut y = vec![0.0; self.matrix.rows()];
        self.run_into(x, &mut y, threads)?;
        Ok(y)
    }

    /// Runs `y = A·x` into a caller-provided buffer (zeroed here first).
    pub fn run_into(&self, x: &[Scalar], y: &mut [Scalar], threads: usize) -> Result<(), String> {
        // The same automatic work-size scaling as the generated kernels, so
        // baseline timings face identical threading overheads.
        let workers = alpha_cpu::effective_workers_pooled(threads, self.matrix.nnz());
        self.exec(
            x,
            y,
            workers,
            &Executor::Pooled(alpha_parallel::Pool::shared()),
        )
    }

    /// Runs `y = A·x` with the legacy **spawn-per-call** threading — the
    /// comparison half of pooled-vs-spawn bench rows, mirroring
    /// `NativeKernel::run_spawning`.
    pub fn run_into_spawning(
        &self,
        x: &[Scalar],
        y: &mut [Scalar],
        threads: usize,
    ) -> Result<(), String> {
        let workers = alpha_cpu::effective_workers(threads, self.matrix.nnz());
        self.exec(x, y, workers, &Executor::Spawn { threads: workers })
    }

    fn exec(
        &self,
        x: &[Scalar],
        y: &mut [Scalar],
        workers: usize,
        exec: &Executor<'_>,
    ) -> Result<(), String> {
        if x.len() != self.matrix.cols() {
            return Err(format!(
                "input vector has length {}, matrix has {} columns",
                x.len(),
                self.matrix.cols()
            ));
        }
        if y.len() != self.matrix.rows() {
            return Err(format!(
                "output vector has length {}, matrix has {} rows",
                y.len(),
                self.matrix.rows()
            ));
        }
        y.fill(0.0);
        match &self.imp {
            Imp::Csr => self.run_csr(x, y, workers, exec),
            Imp::Ell {
                width,
                cols,
                values,
            } => run_ell(*width, cols, values, x, y, workers, exec),
            Imp::Hyb {
                width,
                ell_cols,
                ell_values,
                coo,
            } => {
                run_ell(*width, ell_cols, ell_values, x, y, workers, exec);
                for &(row, col, value) in coo {
                    y[row as usize] += value * x[col as usize];
                }
            }
            Imp::Merge => self.run_merge(x, y, workers, exec),
        }
        Ok(())
    }

    /// Steady-state measurement of this baseline with the shared harness:
    /// identical warmup/min-of-N treatment as the machine-designed kernels
    /// (pooled, buffer reused across reps).
    pub fn measure(
        &self,
        harness: TimingHarness,
        x: &[Scalar],
        threads: usize,
    ) -> Result<MeasuredReport, String> {
        let mut y = vec![0.0; self.matrix.rows()];
        self.run_into(x, &mut y, threads)?;
        let threads = alpha_cpu::effective_workers_pooled(threads, self.matrix.nnz());
        Ok(harness.measure(self.useful_flops(), threads, || {
            self.run_into(x, &mut y, threads)
                .expect("dimensions validated above");
        }))
    }

    /// [`NativeBaselineKernel::measure`] on the legacy spawn-per-call path —
    /// the other half of a pooled-vs-spawn comparison row.
    pub fn measure_spawning(
        &self,
        harness: TimingHarness,
        x: &[Scalar],
        threads: usize,
    ) -> Result<MeasuredReport, String> {
        let mut y = vec![0.0; self.matrix.rows()];
        self.run_into_spawning(x, &mut y, threads)?;
        let threads = alpha_cpu::effective_workers(threads, self.matrix.nnz());
        Ok(harness.measure(self.useful_flops(), threads, || {
            self.run_into_spawning(x, &mut y, threads)
                .expect("dimensions validated above");
        }))
    }

    fn run_csr(&self, x: &[Scalar], y: &mut [Scalar], threads: usize, exec: &Executor<'_>) {
        let m = &self.matrix;
        for_row_chunks(m.rows(), threads, y, exec, |first, last, out| {
            let offsets = m.row_offsets();
            let cols = m.col_indices();
            let values = m.values();
            for (row, slot) in (first..last).zip(out.iter_mut()) {
                let mut acc = 0.0;
                for idx in offsets[row] as usize..offsets[row + 1] as usize {
                    acc += values[idx] * x[cols[idx] as usize];
                }
                *slot = acc;
            }
        });
    }

    fn run_merge(&self, x: &[Scalar], y: &mut [Scalar], threads: usize, exec: &Executor<'_>) {
        let m = &self.matrix;
        let nnz = m.nnz();
        if nnz == 0 {
            return;
        }
        let chunks = nnz.div_ceil(MERGE_NNZ_PER_CHUNK).max(1);
        let workers = threads.min(chunks).max(1);
        let chunks_per_worker = chunks.div_ceil(workers);
        let spans: Vec<(usize, usize)> = (0..workers)
            .map(|w| {
                (
                    (w * chunks_per_worker * MERGE_NNZ_PER_CHUNK).min(nnz),
                    ((w + 1) * chunks_per_worker * MERGE_NNZ_PER_CHUNK).min(nnz),
                )
            })
            .filter(|&(start, end)| start < end)
            .collect();
        let offsets = m.row_offsets();
        let cols = m.col_indices();
        let values = m.values();
        let last_row = m.rows().saturating_sub(1);
        let partials: Vec<(usize, Vec<Scalar>)> = exec.map(&spans, |&(start, end)| {
            let mut row = match offsets.binary_search(&(start as u32)) {
                Ok(r) => r.min(last_row),
                Err(r) => r - 1,
            };
            while row < last_row && offsets[row + 1] as usize <= start {
                row += 1;
            }
            let base_row = row;
            let mut sums = Vec::new();
            let mut cursor = start;
            loop {
                let seg_end = (offsets[row + 1] as usize).min(end);
                let mut acc = 0.0;
                for idx in cursor..seg_end {
                    acc += values[idx] * x[cols[idx] as usize];
                }
                sums.push(acc);
                cursor = seg_end;
                if cursor >= end {
                    break;
                }
                row += 1;
            }
            (base_row, sums)
        });
        for (base_row, sums) in &partials {
            for (j, &v) in sums.iter().enumerate() {
                y[base_row + j] += v;
            }
        }
    }
}

/// Pads each row of `rows` to `width` slots (column 0 / value 0 filler),
/// row-major.
fn pad_rows(
    matrix: &CsrMatrix,
    width: usize,
    rows: std::ops::Range<usize>,
) -> (Vec<u32>, Vec<Scalar>) {
    let count = rows.len();
    let mut cols = vec![0u32; count * width];
    let mut values = vec![0.0; count * width];
    for (i, row) in rows.enumerate() {
        let range = matrix.row_range(row);
        let take = range.len().min(width);
        cols[i * width..i * width + take]
            .copy_from_slice(&matrix.col_indices()[range.start..range.start + take]);
        values[i * width..i * width + take]
            .copy_from_slice(&matrix.values()[range.start..range.start + take]);
    }
    (cols, values)
}

/// Splits `[0, rows)` into contiguous chunks across workers; each worker
/// writes its per-row results straight into its disjoint slice of `y`
/// (baseline formats have identity row order) — no staging buffers, no
/// per-run allocation, exactly like the generated kernels' contiguous path.
fn for_row_chunks(
    rows: usize,
    threads: usize,
    y: &mut [Scalar],
    exec: &Executor<'_>,
    body: impl Fn(usize, usize, &mut [Scalar]) + Sync,
) {
    if rows == 0 {
        return;
    }
    exec.over_chunks(
        alpha_parallel::split_mut(&mut y[..rows], threads),
        |first, out| body(first, first + out.len(), out),
    );
}

fn run_ell(
    width: usize,
    cols: &[u32],
    values: &[Scalar],
    x: &[Scalar],
    y: &mut [Scalar],
    threads: usize,
    exec: &Executor<'_>,
) {
    let rows = cols.len() / width.max(1);
    for_row_chunks(rows, threads, y, exec, |first, last, out| {
        for (row, slot) in (first..last).zip(out.iter_mut()) {
            let base = row * width;
            let mut acc = 0.0;
            for k in 0..width {
                acc += values[base + k] * x[cols[base + k] as usize];
            }
            *slot = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_matrix::{gen, max_scaled_error, DenseVector};

    #[test]
    fn native_baselines_match_the_reference_spmv() {
        for family in gen::PatternFamily::ALL {
            let matrix = family.generate(512, 8, 17);
            let x = DenseVector::random(512, 5);
            let expected = matrix.spmv(x.as_slice()).unwrap();
            for baseline in native_set() {
                let kernel = NativeBaselineKernel::new(baseline, &matrix).unwrap();
                for threads in [1, 4] {
                    let y = kernel.run(x.as_slice(), threads).unwrap();
                    assert!(
                        max_scaled_error(&y, &expected) <= 1e-3,
                        "{} diverged on {} at {threads} thread(s)",
                        baseline.name(),
                        family.name()
                    );
                }
            }
        }
    }

    #[test]
    fn hyb_splits_overflow_into_coo() {
        // One long row forces a COO part.
        let mut coo = alpha_matrix::CooMatrix::new(16, 64);
        for c in 0..64 {
            coo.push(0, c, 1.0);
        }
        for r in 1..16 {
            coo.push(r, r, 2.0);
        }
        let matrix = alpha_matrix::CsrMatrix::from_coo(&coo);
        let kernel = NativeBaselineKernel::new(Baseline::Hyb, &matrix).unwrap();
        match &kernel.imp {
            Imp::Hyb { coo, .. } => assert!(!coo.is_empty(), "long row must overflow"),
            _ => panic!("expected HYB"),
        }
        let x = DenseVector::ones(64);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        let y = kernel.run(x.as_slice(), 3).unwrap();
        assert!(max_scaled_error(&y, &expected) <= 1e-3);
    }

    #[test]
    fn measure_uses_the_shared_harness() {
        let matrix = gen::uniform_random(1_024, 1_024, 8, 3);
        let x = DenseVector::ones(1_024);
        for baseline in native_set() {
            let kernel = NativeBaselineKernel::new(baseline, &matrix).unwrap();
            let report = kernel
                .measure(TimingHarness::quick(), x.as_slice(), 2)
                .unwrap();
            assert!(report.min_us > 0.0, "{}", baseline.name());
            assert!(report.gflops > 0.0);
            assert_eq!(report.useful_flops, 2 * matrix.nnz() as u64);
        }
    }

    #[test]
    fn unsupported_baselines_are_an_error() {
        let matrix = gen::uniform_random(64, 64, 4, 1);
        assert!(NativeBaselineKernel::new(Baseline::Csr5, &matrix).is_err());
        assert!(!native_set().contains(&Baseline::Taco));
    }

    #[test]
    fn dimension_mismatches_are_errors() {
        let matrix = gen::uniform_random(64, 32, 4, 1);
        let kernel = NativeBaselineKernel::new(Baseline::CsrScalar, &matrix).unwrap();
        assert!(kernel.run(&[1.0; 31], 1).is_err());
        let mut y = vec![0.0; 63];
        assert!(kernel.run_into(&[1.0; 32], &mut y, 1).is_err());
    }

    #[test]
    fn empty_rows_and_matrices_are_handled() {
        let coo = alpha_matrix::CooMatrix::new(8, 8);
        let empty = alpha_matrix::CsrMatrix::from_coo(&coo);
        for baseline in native_set() {
            let kernel = NativeBaselineKernel::new(baseline, &empty).unwrap();
            let y = kernel.run(&[1.0; 8], 2).unwrap();
            assert!(y.iter().all(|&v| v == 0.0));
        }
    }
}
