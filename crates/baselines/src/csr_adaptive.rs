//! CSR-Adaptive kernel (Greathouse & Daga, SC'14 + HiPC'15).
//!
//! Rows are grouped greedily into "row blocks" whose non-zeros fit a fixed
//! shared-memory budget; such blocks are processed in CSR-Stream mode (the
//! whole block's non-zeros are staged through shared memory and reduced per
//! row by offsets).  A long row that exceeds the budget alone gets a whole
//! block in CSR-Vector mode.  The format gives up register accumulation,
//! which is what the paper points to for its weak performance on large
//! regular matrices.

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel, WARP_SIZE};
use alpha_matrix::CsrMatrix;

const BLOCK_DIM: usize = 128;
/// Non-zeros that fit the shared-memory staging buffer of one thread block.
const STREAM_NNZ: usize = 1024;

/// One row block of the CSR-Adaptive decomposition.
#[derive(Debug, Clone, Copy)]
struct RowBlock {
    first_row: usize,
    last_row: usize, // exclusive
}

/// CSR-Adaptive: CSR-Stream for bunches of short rows, CSR-Vector for long
/// rows.
pub struct CsrAdaptiveKernel {
    matrix: CsrMatrix,
    row_blocks: Vec<RowBlock>,
}

impl CsrAdaptiveKernel {
    /// Builds the row-block decomposition.
    pub fn new(matrix: CsrMatrix) -> Self {
        let mut row_blocks = Vec::new();
        let mut first = 0usize;
        let mut nnz_in_block = 0usize;
        for row in 0..matrix.rows() {
            let len = matrix.row_len(row);
            if len > STREAM_NNZ {
                // Close the running block, then give the long row its own.
                if first < row {
                    row_blocks.push(RowBlock {
                        first_row: first,
                        last_row: row,
                    });
                }
                row_blocks.push(RowBlock {
                    first_row: row,
                    last_row: row + 1,
                });
                first = row + 1;
                nnz_in_block = 0;
                continue;
            }
            if nnz_in_block + len > STREAM_NNZ && first < row {
                row_blocks.push(RowBlock {
                    first_row: first,
                    last_row: row,
                });
                first = row;
                nnz_in_block = 0;
            }
            nnz_in_block += len;
        }
        if first < matrix.rows() {
            row_blocks.push(RowBlock {
                first_row: first,
                last_row: matrix.rows(),
            });
        }
        CsrAdaptiveKernel { matrix, row_blocks }
    }

    /// Number of row blocks of the decomposition.
    pub fn row_block_count(&self) -> usize {
        self.row_blocks.len()
    }
}

impl SpmvKernel for CsrAdaptiveKernel {
    fn name(&self) -> String {
        "CSR-Adaptive".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::with_shared_mem(self.row_blocks.len().max(1), BLOCK_DIM, STREAM_NNZ * 4)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let Some(&block) = self.row_blocks.get(block_id) else {
            return;
        };
        let rows = block.last_row - block.first_row;
        let single_long_row = rows == 1 && self.matrix.row_len(block.first_row) > STREAM_NNZ;
        // Row-block descriptor load.
        ctx.thread(0);
        ctx.load_matrix_stream(Access::WarpCoalesced, 2, 4);

        if single_long_row {
            // CSR-Vector mode: the whole block strides through one long row.
            let row = block.first_row;
            let range = self.matrix.row_range(row);
            let len = range.len();
            let per_thread = len.div_ceil(BLOCK_DIM);
            for tid in 0..BLOCK_DIM {
                let seg_start = tid * per_thread;
                if seg_start >= len {
                    break;
                }
                let seg = per_thread.min(len - seg_start);
                ctx.thread(tid);
                ctx.load_matrix_stream(Access::WarpCoalesced, seg, 4);
                ctx.load_matrix_stream(Access::WarpCoalesced, seg, 4);
                ctx.gather_x_cost(
                    &self.matrix.col_indices()
                        [range.start + seg_start..range.start + seg_start + seg],
                );
                ctx.mul_add(seg);
            }
            ctx.thread(0);
            // Tree reduction across the block in shared memory.
            ctx.shared_traffic(BLOCK_DIM * 8);
            ctx.syncthreads();
            ctx.warp_shuffle_reduce(WARP_SIZE);
            let mut acc = 0.0;
            for idx in range {
                acc += self.matrix.values()[idx] * ctx.x(self.matrix.col_indices()[idx] as usize);
            }
            ctx.store_y(row, acc);
            return;
        }

        // CSR-Stream mode: stage every non-zero product of the row block in
        // shared memory, then reduce rows by their offsets.
        let nnz_start = self.matrix.row_offsets()[block.first_row] as usize;
        let nnz_end = self.matrix.row_offsets()[block.last_row] as usize;
        let block_nnz = nnz_end - nnz_start;
        let per_thread = block_nnz.div_ceil(BLOCK_DIM).max(1);
        for tid in 0..BLOCK_DIM {
            let seg_start = tid * per_thread;
            if seg_start >= block_nnz {
                break;
            }
            let seg = per_thread.min(block_nnz - seg_start);
            ctx.thread(tid);
            ctx.load_matrix_stream(Access::WarpCoalesced, seg, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, seg, 4);
            ctx.gather_x_cost(
                &self.matrix.col_indices()[nnz_start + seg_start..nnz_start + seg_start + seg],
            );
            ctx.mul_add(seg);
            // Products written to the shared staging buffer (no register
            // accumulation -- the CSR-Adaptive weakness).
            ctx.shared_traffic(seg * 4);
        }
        ctx.syncthreads();
        // Per-row reduction from shared memory.
        for (i, row) in (block.first_row..block.last_row).enumerate() {
            let range = self.matrix.row_range(row);
            ctx.thread(i % BLOCK_DIM);
            ctx.load_matrix_stream(Access::WarpCoalesced, 1, 4);
            ctx.shared_traffic(range.len() * 4);
            let mut acc = 0.0;
            for idx in range {
                acc += self.matrix.values()[idx] * ctx.x(self.matrix.col_indices()[idx] as usize);
            }
            ctx.alu(1);
            ctx.store_y(row, acc);
        }
    }

    fn format_bytes(&self) -> usize {
        self.matrix.format_bytes() + self.row_blocks.len() * 8
    }

    fn useful_flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    fn input_cols(&self) -> usize {
        self.matrix.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn csr_adaptive_is_correct() {
        let matrix = gen::powerlaw(500, 500, 10, 1.9, 11);
        let kernel = CsrAdaptiveKernel::new(matrix.clone());
        assert!(kernel.row_block_count() > 1);
        let x = DenseVector::random(500, 8);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let r = sim.run(&kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
    }

    #[test]
    fn long_rows_get_their_own_block() {
        let matrix = gen::dense_row_blocks(2_000, 3, 1_500, 3);
        let kernel = CsrAdaptiveKernel::new(matrix);
        // At least the 3 dense rows become dedicated vector blocks.
        assert!(kernel.row_block_count() >= 4);
    }

    #[test]
    fn handles_dense_long_row_correctly() {
        let matrix = gen::dense_row_blocks(3_000, 2, 2_500, 5);
        let kernel = CsrAdaptiveKernel::new(matrix.clone());
        let x = DenseVector::random(3_000, 1);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let r = sim.run(&kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
    }
}
