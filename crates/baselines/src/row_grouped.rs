//! Row-grouped CSR kernel (Oberhuber et al.): rows are sorted by length and
//! grouped so that each group carries a similar amount of work; every thread
//! accumulates one row and results are written back through global-memory
//! atomics (the format's characteristic inefficiency the paper's Figure 14
//! discussion calls out).

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel};
use alpha_matrix::CsrMatrix;

const BLOCK_DIM: usize = 256;

/// Row-grouped CSR.
pub struct RowGroupedCsrKernel {
    /// Matrix with rows permuted into decreasing-length order.
    sorted: CsrMatrix,
    /// Original row id of each sorted row.
    origin_rows: Vec<u32>,
}

impl RowGroupedCsrKernel {
    /// Sorts the rows by decreasing length and groups them per block.
    pub fn new(matrix: &CsrMatrix) -> Self {
        let mut order: Vec<usize> = (0..matrix.rows()).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(matrix.row_len(r)));
        let sorted = matrix.select_rows(&order);
        RowGroupedCsrKernel {
            sorted,
            origin_rows: order.iter().map(|&r| r as u32).collect(),
        }
    }
}

impl SpmvKernel for RowGroupedCsrKernel {
    fn name(&self) -> String {
        "row-grouped CSR".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.sorted.rows().div_ceil(BLOCK_DIM).max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let base = block_id * BLOCK_DIM;
        for tid in 0..BLOCK_DIM {
            let row = base + tid;
            if row >= self.sorted.rows() {
                break;
            }
            ctx.thread(tid);
            let range = self.sorted.row_range(row);
            // Group offsets + origin row metadata.
            ctx.load_matrix_stream(Access::WarpCoalesced, 3, 4);
            if range.is_empty() {
                continue;
            }
            let len = range.len();
            // The grouped layout stores each group's rows interleaved, so the
            // streams are coalesced (this is the format's strength).
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.gather_x_cost(&self.sorted.col_indices()[range.clone()]);
            let mut acc = 0.0;
            for idx in range {
                acc += self.sorted.values()[idx] * ctx.x(self.sorted.col_indices()[idx] as usize);
            }
            ctx.mul_add(len);
            // Global-memory atomic reduction: the format's weakness.
            ctx.atomic_add_y(self.origin_rows[row] as usize, acc);
        }
    }

    fn format_bytes(&self) -> usize {
        self.sorted.format_bytes() + self.origin_rows.len() * 4
    }

    fn useful_flops(&self) -> u64 {
        2 * self.sorted.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.sorted.rows()
    }

    fn input_cols(&self) -> usize {
        self.sorted.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn row_grouped_is_correct() {
        let matrix = gen::powerlaw(400, 400, 9, 2.0, 13);
        let kernel = RowGroupedCsrKernel::new(&matrix);
        let x = DenseVector::random(400, 4);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let r = sim.run(&kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
    }

    #[test]
    fn rows_are_sorted_by_decreasing_length() {
        let matrix = gen::powerlaw(200, 200, 8, 2.0, 3);
        let kernel = RowGroupedCsrKernel::new(&matrix);
        let lengths: Vec<usize> = (0..200).map(|r| kernel.sorted.row_len(r)).collect();
        assert!(lengths.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn atomics_are_charged_for_every_row() {
        let matrix = gen::uniform_random(1_000, 1_000, 4, 3);
        let kernel = RowGroupedCsrKernel::new(&matrix);
        let x = DenseVector::ones(1_000);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let r = sim.run(&kernel, x.as_slice()).unwrap();
        assert!(r.report.counters.atomic_ops >= 1_000);
    }
}
