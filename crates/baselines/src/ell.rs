//! ELL and SELL kernels.
//!
//! ELL pads every row to the global maximum row length and stores the matrix
//! column-major so that one-thread-per-row access is perfectly coalesced —
//! great for regular matrices, catastrophic padding for irregular ones.
//! SELL (sliced ELL) pads only within slices of consecutive rows, trading a
//! small slice-offset array for far less padding.

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel};
use alpha_matrix::{CsrMatrix, EllMatrix};

const BLOCK_DIM: usize = 128;

/// ELLPACK kernel: one thread per row over the column-major padded layout.
pub struct EllKernel {
    ell: EllMatrix,
    csr: CsrMatrix,
}

impl EllKernel {
    /// Converts the matrix to ELL.
    pub fn new(matrix: &CsrMatrix) -> Self {
        EllKernel {
            ell: EllMatrix::from_csr(matrix),
            csr: matrix.clone(),
        }
    }

    /// Padding overhead of the conversion: stored slots divided by real
    /// non-zeros (1.0 means no padding at all).
    pub fn padding_ratio(&self) -> f64 {
        if self.ell.nnz() == 0 {
            1.0
        } else {
            self.ell.padded_len() as f64 / self.ell.nnz() as f64
        }
    }
}

impl SpmvKernel for EllKernel {
    fn name(&self) -> String {
        "ELL".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.ell.rows().div_ceil(BLOCK_DIM).max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let base = block_id * BLOCK_DIM;
        let width = self.ell.width();
        for tid in 0..BLOCK_DIM {
            let row = base + tid;
            if row >= self.ell.rows() {
                break;
            }
            ctx.thread(tid);
            if width == 0 {
                continue;
            }
            // Column-major storage: adjacent threads read adjacent slots.
            ctx.load_matrix_stream(Access::WarpCoalesced, width, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, width, 4);
            ctx.mul_add(width);
            let range = self.csr.row_range(row);
            if !range.is_empty() {
                ctx.gather_x_cost(&self.csr.col_indices()[range.clone()]);
            }
            let mut acc = 0.0;
            for idx in range {
                acc += self.csr.values()[idx] * ctx.x(self.csr.col_indices()[idx] as usize);
            }
            ctx.store_y(row, acc);
        }
    }

    fn format_bytes(&self) -> usize {
        self.ell.padded_len() * 8
    }

    fn useful_flops(&self) -> u64 {
        2 * self.ell.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.ell.rows()
    }

    fn input_cols(&self) -> usize {
        self.ell.cols()
    }
}

/// SELL kernel: ELL padding restricted to slices of `slice_rows` rows.
pub struct SellKernel {
    csr: CsrMatrix,
    slice_rows: usize,
    /// Padded width of each slice.
    slice_widths: Vec<usize>,
    padded_slots: usize,
}

impl SellKernel {
    /// Converts the matrix into slices of `slice_rows` rows.
    pub fn new(matrix: &CsrMatrix, slice_rows: usize) -> Self {
        let slice_rows = slice_rows.max(1);
        let slices = matrix.rows().div_ceil(slice_rows).max(1);
        let mut slice_widths = Vec::with_capacity(slices);
        let mut padded_slots = 0usize;
        for s in 0..slices {
            let first = s * slice_rows;
            let last = ((s + 1) * slice_rows).min(matrix.rows());
            let width = (first..last).map(|r| matrix.row_len(r)).max().unwrap_or(0);
            slice_widths.push(width);
            padded_slots += width * (last - first);
        }
        SellKernel {
            csr: matrix.clone(),
            slice_rows,
            slice_widths,
            padded_slots,
        }
    }

    /// Padding overhead of the conversion.
    pub fn padding_ratio(&self) -> f64 {
        if self.csr.nnz() == 0 {
            1.0
        } else {
            self.padded_slots as f64 / self.csr.nnz() as f64
        }
    }
}

impl SpmvKernel for SellKernel {
    fn name(&self) -> String {
        "SELL".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.csr.rows().div_ceil(BLOCK_DIM).max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let base = block_id * BLOCK_DIM;
        for tid in 0..BLOCK_DIM {
            let row = base + tid;
            if row >= self.csr.rows() {
                break;
            }
            ctx.thread(tid);
            let slice = row / self.slice_rows;
            let width = self.slice_widths[slice];
            // Slice offset metadata.
            ctx.load_matrix_stream(Access::WarpCoalesced, 1, 4);
            if width == 0 {
                continue;
            }
            ctx.load_matrix_stream(Access::WarpCoalesced, width, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, width, 4);
            ctx.mul_add(width);
            let range = self.csr.row_range(row);
            if !range.is_empty() {
                ctx.gather_x_cost(&self.csr.col_indices()[range.clone()]);
            }
            let mut acc = 0.0;
            for idx in range {
                acc += self.csr.values()[idx] * ctx.x(self.csr.col_indices()[idx] as usize);
            }
            ctx.store_y(row, acc);
        }
    }

    fn format_bytes(&self) -> usize {
        self.padded_slots * 8 + self.slice_widths.len() * 4
    }

    fn useful_flops(&self) -> u64 {
        2 * self.csr.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.csr.rows()
    }

    fn input_cols(&self) -> usize {
        self.csr.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    fn check(kernel: &dyn SpmvKernel, matrix: &CsrMatrix) -> f64 {
        let x = DenseVector::random(matrix.cols(), 11);
        let sim = GpuSim::new(DeviceProfile::a100());
        let r = sim.run(kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
        r.report.gflops
    }

    #[test]
    fn ell_and_sell_are_correct() {
        let matrix = gen::powerlaw(400, 400, 8, 2.0, 2);
        check(&EllKernel::new(&matrix), &matrix);
        check(&SellKernel::new(&matrix, 32), &matrix);
    }

    #[test]
    fn sell_pads_less_than_ell_on_irregular_matrices() {
        let matrix = gen::powerlaw(2_000, 2_000, 8, 1.9, 7);
        let ell = EllKernel::new(&matrix);
        let sell = SellKernel::new(&matrix, 32);
        assert!(sell.padding_ratio() < ell.padding_ratio());
        assert!(sell.format_bytes() < ell.format_bytes());
    }

    #[test]
    fn sell_outperforms_ell_on_irregular_matrices() {
        let matrix = gen::powerlaw(8_192, 8_192, 12, 1.9, 5);
        let ell_gflops = check(&EllKernel::new(&matrix), &matrix);
        let sell_gflops = check(&SellKernel::new(&matrix, 32), &matrix);
        assert!(
            sell_gflops > ell_gflops,
            "SELL {sell_gflops} should beat ELL {ell_gflops} on irregular data"
        );
    }

    #[test]
    fn ell_matches_sell_on_perfectly_regular_matrices() {
        let matrix = gen::uniform_random(4_096, 4_096, 16, 9);
        let ell = EllKernel::new(&matrix);
        let sell = SellKernel::new(&matrix, 32);
        assert!((ell.padding_ratio() - 1.0).abs() < 1e-9);
        assert!((sell.padding_ratio() - 1.0).abs() < 1e-9);
    }
}
