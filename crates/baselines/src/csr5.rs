//! CSR5 kernel (Liu & Vinter, ICS'15): the non-zero stream is cut into 2-D
//! tiles of `sigma x omega` elements; each thread owns one column of a tile,
//! walks it with a bit-flag marking row boundaries, and partial sums that
//! cross tile borders are fixed up with atomics.  The result is near-perfect
//! load balance regardless of the row-length distribution.

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel, WARP_SIZE};
use alpha_matrix::CsrMatrix;

const BLOCK_DIM: usize = 128;

/// CSR5-style tiled nnz-split kernel.
pub struct Csr5Kernel {
    matrix: CsrMatrix,
    /// Non-zeros per thread (the tile column height, "sigma").
    sigma: usize,
}

impl Csr5Kernel {
    /// Builds the kernel with the given tile column height.
    pub fn new(matrix: CsrMatrix, sigma: usize) -> Self {
        Csr5Kernel {
            matrix,
            sigma: sigma.max(1),
        }
    }

    fn threads_total(&self) -> usize {
        self.matrix.nnz().div_ceil(self.sigma).max(1)
    }
}

impl SpmvKernel for Csr5Kernel {
    fn name(&self) -> String {
        "CSR5".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.threads_total().div_ceil(BLOCK_DIM).max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let nnz = self.matrix.nnz();
        let offsets = self.matrix.row_offsets();
        let first_thread = block_id * BLOCK_DIM;
        for tid in 0..BLOCK_DIM {
            let start = (first_thread + tid) * self.sigma;
            if start >= nnz {
                break;
            }
            let end = (start + self.sigma).min(nnz);
            let len = end - start;
            ctx.thread(tid);
            // Tile descriptor (bit flags + row start) and the value / column
            // streams; the tile transpose makes the streams coalesced.
            ctx.load_matrix_stream(Access::WarpCoalesced, 2, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.mul_add(len);
            ctx.alu(len); // bit-flag walk

            let mut row = match offsets.binary_search(&(start as u32)) {
                Ok(r) => r.min(self.matrix.rows().saturating_sub(1)),
                Err(r) => r.saturating_sub(1),
            };
            let mut cursor = start;
            while cursor < end {
                let row_end = (offsets[row + 1] as usize).min(nnz);
                let seg_end = row_end.min(end);
                if seg_end > cursor {
                    ctx.gather_x_cost(&self.matrix.col_indices()[cursor..seg_end]);
                    let mut acc = 0.0;
                    for idx in cursor..seg_end {
                        acc += self.matrix.values()[idx]
                            * ctx.x(self.matrix.col_indices()[idx] as usize);
                    }
                    let crosses_start = cursor == start && start != offsets[row] as usize;
                    let crosses_end = seg_end == end && seg_end != row_end;
                    if crosses_start || crosses_end {
                        // Partial sum of a row shared with a neighbouring tile
                        // column: segmented shuffle within the warp, atomic
                        // across tiles.
                        ctx.warp_shuffle_reduce(WARP_SIZE);
                        ctx.atomic_add_y(row, acc);
                    } else {
                        ctx.store_y(row, acc);
                    }
                }
                cursor = seg_end;
                row += 1;
            }
        }
    }

    fn format_bytes(&self) -> usize {
        // CSR arrays plus one tile descriptor word per thread.
        self.matrix.format_bytes() + self.threads_total() * 8
    }

    fn useful_flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    fn input_cols(&self) -> usize {
        self.matrix.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn csr5_is_correct() {
        for sigma in [4, 16, 64] {
            let matrix = gen::powerlaw(500, 500, 10, 1.9, 17);
            let kernel = Csr5Kernel::new(matrix.clone(), sigma);
            let x = DenseVector::random(500, 8);
            let sim = GpuSim::new(DeviceProfile::test_profile());
            let r = sim.run(&kernel, x.as_slice()).unwrap();
            let expected = matrix.spmv(x.as_slice()).unwrap();
            assert!(
                DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3),
                "sigma={sigma}"
            );
        }
    }

    #[test]
    fn csr5_balances_irregular_matrices_better_than_csr_scalar() {
        let matrix = gen::powerlaw(16_384, 16_384, 16, 1.8, 3);
        let x = DenseVector::ones(16_384);
        let sim = GpuSim::new(DeviceProfile::a100());
        let csr5 = sim
            .run(&Csr5Kernel::new(matrix.clone(), 16), x.as_slice())
            .unwrap()
            .report;
        let scalar = sim
            .run(
                &crate::csr::CsrScalarKernel::new(matrix.clone()),
                x.as_slice(),
            )
            .unwrap()
            .report;
        assert!(csr5.gflops > scalar.gflops);
        // Load imbalance across blocks is much lower for the nnz split.
        assert!(csr5.counters.block_imbalance() < scalar.counters.block_imbalance());
    }
}
