//! ACSR kernel (Ashari et al., SC'14): rows are grouped into bins by row
//! length; each bin is processed with a vector width matched to its lengths
//! (short bins get one thread per row, long bins get a warp per row).

use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel, WARP_SIZE};
use alpha_matrix::CsrMatrix;

const BLOCK_DIM: usize = 128;

/// One row-length bin of the ACSR decomposition.
#[derive(Debug, Clone)]
struct Bin {
    /// Rows (original ids) in this bin.
    rows: Vec<u32>,
    /// Threads cooperating per row in this bin.
    threads_per_row: usize,
    /// Number of thread blocks assigned to this bin.
    blocks: usize,
}

/// ACSR: binned CSR with per-bin vectorisation.
pub struct AcsrKernel {
    matrix: CsrMatrix,
    bins: Vec<Bin>,
    /// Exclusive prefix sums of per-bin block counts.
    block_offsets: Vec<usize>,
}

impl AcsrKernel {
    /// Bins rows by the power-of-two bucket of their length.
    pub fn new(matrix: &CsrMatrix) -> Self {
        // Bucket b holds rows with length in (2^(b-1), 2^b].
        let mut buckets: Vec<Vec<u32>> = Vec::new();
        for row in 0..matrix.rows() {
            let len = matrix.row_len(row);
            let b = if len == 0 {
                0
            } else {
                (usize::BITS - len.leading_zeros()) as usize
            };
            if b >= buckets.len() {
                buckets.resize(b + 1, Vec::new());
            }
            buckets[b].push(row as u32);
        }
        let mut bins = Vec::new();
        for (b, rows) in buckets.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let threads_per_row = (1usize << b).clamp(1, WARP_SIZE);
            let rows_per_block = (BLOCK_DIM / threads_per_row).max(1);
            let blocks = rows.len().div_ceil(rows_per_block).max(1);
            bins.push(Bin {
                rows,
                threads_per_row,
                blocks,
            });
        }
        let mut block_offsets = Vec::with_capacity(bins.len() + 1);
        let mut total = 0;
        block_offsets.push(0);
        for bin in &bins {
            total += bin.blocks;
            block_offsets.push(total);
        }
        AcsrKernel {
            matrix: matrix.clone(),
            bins,
            block_offsets,
        }
    }

    /// Number of bins the matrix was decomposed into.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    fn total_blocks(&self) -> usize {
        *self.block_offsets.last().unwrap_or(&1)
    }
}

impl SpmvKernel for AcsrKernel {
    fn name(&self) -> String {
        "ACSR".into()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::new(self.total_blocks().max(1), BLOCK_DIM)
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        // Locate the bin this block belongs to.
        let bin_index = match self.block_offsets.binary_search(&block_id) {
            Ok(mut i) => {
                while i < self.bins.len() && self.block_offsets[i + 1] == self.block_offsets[i] {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        if bin_index >= self.bins.len() {
            return;
        }
        let bin = &self.bins[bin_index];
        let local_block = block_id - self.block_offsets[bin_index];
        let rows_per_block = (BLOCK_DIM / bin.threads_per_row).max(1);
        let first = local_block * rows_per_block;
        for i in 0..rows_per_block {
            let Some(&row) = bin.rows.get(first + i) else {
                break;
            };
            let row = row as usize;
            let range = self.matrix.row_range(row);
            let len = range.len();
            let lead = (i * bin.threads_per_row) % BLOCK_DIM;
            ctx.thread(lead);
            // Bin membership + row offsets metadata.
            ctx.load_matrix_stream(Access::WarpCoalesced, 3, 4);
            if len == 0 {
                continue;
            }
            let per_lane = len.div_ceil(bin.threads_per_row);
            for lane in 0..bin.threads_per_row {
                let seg_start = lane * per_lane;
                if seg_start >= len {
                    break;
                }
                let seg = per_lane.min(len - seg_start);
                ctx.thread((lead + lane) % BLOCK_DIM);
                ctx.load_matrix_stream(Access::WarpCoalesced, seg, 4);
                ctx.load_matrix_stream(Access::WarpCoalesced, seg, 4);
                ctx.mul_add(seg);
            }
            ctx.thread(lead);
            ctx.gather_x_cost(&self.matrix.col_indices()[range.clone()]);
            let mut acc = 0.0;
            for idx in range {
                acc += self.matrix.values()[idx] * ctx.x(self.matrix.col_indices()[idx] as usize);
            }
            if bin.threads_per_row > 1 {
                ctx.warp_shuffle_reduce(bin.threads_per_row);
            }
            ctx.store_y(row, acc);
        }
    }

    fn format_bytes(&self) -> usize {
        // CSR arrays plus the per-bin row lists.
        self.matrix.format_bytes() + self.bins.iter().map(|b| b.rows.len() * 4).sum::<usize>()
    }

    fn useful_flops(&self) -> u64 {
        2 * self.matrix.nnz() as u64
    }

    fn output_rows(&self) -> usize {
        self.matrix.rows()
    }

    fn input_cols(&self) -> usize {
        self.matrix.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::GpuSim;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn acsr_is_correct() {
        let matrix = gen::powerlaw(600, 600, 10, 1.9, 7);
        let kernel = AcsrKernel::new(&matrix);
        assert!(kernel.bin_count() >= 3);
        let x = DenseVector::random(600, 2);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let r = sim.run(&kernel, x.as_slice()).unwrap();
        let expected = matrix.spmv(x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(r.y.clone()).approx_eq(&expected, 1e-3));
    }

    #[test]
    fn regular_matrix_collapses_to_few_bins() {
        let matrix = gen::uniform_random(512, 512, 8, 1);
        assert_eq!(AcsrKernel::new(&matrix).bin_count(), 1);
    }

    #[test]
    fn acsr_beats_csr_scalar_on_irregular_matrices() {
        let matrix = gen::powerlaw(8_192, 8_192, 16, 1.8, 3);
        let x = DenseVector::ones(8_192);
        let sim = GpuSim::new(DeviceProfile::a100());
        let acsr = sim
            .run(&AcsrKernel::new(&matrix), x.as_slice())
            .unwrap()
            .report
            .gflops;
        let scalar = sim
            .run(
                &crate::csr::CsrScalarKernel::new(matrix.clone()),
                x.as_slice(),
            )
            .unwrap()
            .report
            .gflops;
        assert!(
            acsr > scalar,
            "ACSR {acsr} should beat CSR-scalar {scalar} on irregular data"
        );
    }
}
