//! A tiny, std-only stand-in for the [criterion](https://crates.io/crates/criterion)
//! bench harness, exposing the subset of its API the `alpha-bench` benches use
//! (`Criterion::benchmark_group`, `BenchmarkGroup::{sample_size, bench_function,
//! finish}`, `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros).  The build environment has no network access to crates.io, so the
//! workspace vendors this shim and renames it to `criterion` via the
//! `package = "criterion-shim"` dependency key; the bench sources compile
//! unchanged against either harness.
//!
//! Measurements are wall-clock medians over `sample_size` samples, printed in
//! a `group/function: <time>` format.  There is no statistical analysis, HTML
//! report or baseline comparison — the point is that `cargo bench` runs and
//! prints comparable numbers offline.

use std::time::{Duration, Instant};

/// Entry point handed to every bench function by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark: a warm-up run, then `sample_size` timed samples;
    /// reports the median sample.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher); // warm-up
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed / bencher.iterations);
            }
        }
        samples.sort();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        println!(
            "  {}/{id}: median {median:?} over {} samples",
            self.name,
            samples.len()
        );
        self
    }

    /// Ends the group (kept for API compatibility; all output is immediate).
    pub fn finish(self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`]; its
/// [`iter`](Bencher::iter) method times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times one execution of `f` and accumulates it into this sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

/// Re-export so `criterion::black_box` resolves like the real crate's.
pub use std::hint::black_box;

/// Declares a bench group function from a list of `fn(&mut Criterion)` items.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_warmup_plus_samples() {
        let mut calls = 0u32;
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3).bench_function("counted", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn macros_compose_into_a_runnable_group() {
        fn noop(c: &mut Criterion) {
            c.benchmark_group("noop")
                .bench_function("nothing", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(benches, noop);
        benches();
    }
}
