//! The `alpha-net` daemon: a TCP server that puts the whole tuning pipeline
//! behind a socket.
//!
//! ```text
//!            accept loop (1 thread)
//!   TCP ───▶ connection threads ──try_push──▶ bounded job queue
//!                │    ▲                            │ pop
//!                │    │ Busy (queue full)          ▼
//!                │    └──────────────────   tuning worker pool
//!                │                                 │
//!                └── PollJob / Spmv ◀── job table ◀┘ (Done / Failed, GC'd)
//! ```
//!
//! Admission control is strict: a full queue answers
//! [`Response::Busy`](crate::proto::Response::Busy) immediately — the daemon
//! never buffers unbounded work.  Tuning workers drain the queue into a
//! shared [`TuningService`], so every job benefits from (and feeds) the same
//! persistent warm [`DesignStore`](alpha_serve::DesignStore); finished jobs
//! keep their [`TunedSpmv`] resident and serve
//! [`Request::Spmv`](crate::proto::Request::Spmv) until their terminal
//! record is garbage-collected.

use crate::proto::{
    decode_request, encode_response, read_frame, write_frame, ErrorKind, JobState, JobSummary,
    ProtoError, Request, Response, ServerStats,
};
use crate::NetError;
use alpha_gpu::DeviceProfile;
use alpha_parallel::{PushError, TaskQueue};
use alpha_serve::{TuneRequest, TuningService};
use alphasparse::TunedSpmv;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Resolves a wire device name to a device profile.  Matching is
/// case-insensitive over the built-in profiles (`A100`, `RTX2080`,
/// `TestGPU`).
pub fn device_by_name(name: &str) -> Option<DeviceProfile> {
    [
        DeviceProfile::a100(),
        DeviceProfile::rtx2080(),
        DeviceProfile::test_profile(),
    ]
    .into_iter()
    .find(|profile| profile.name.eq_ignore_ascii_case(name))
}

/// Tunables of one daemon instance.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Jobs the admission queue holds before new submissions are rejected
    /// with backpressure.
    pub queue_capacity: usize,
    /// Tuning worker threads draining the queue (0 = one per available
    /// core, capped at 4 — tuning saturates cores on its own).
    pub workers: usize,
    /// Terminal (done/failed) job records kept before the oldest are
    /// garbage-collected.  GC'd jobs poll as
    /// [`JobState::Unknown`](crate::proto::JobState::Unknown).
    pub max_terminal_jobs: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            workers: 0,
            max_terminal_jobs: 1024,
        }
    }
}

/// One job's lifecycle record in the in-memory table.
enum Job {
    Queued {
        request: Box<TuneRequest>,
        /// When the job was admitted — a tuning worker turns this into the
        /// queue-wait component of the job's [`JobSummary`].
        enqueued: std::time::Instant,
    },
    Running,
    Done {
        tuned: Arc<TunedSpmv>,
        summary: JobSummary,
    },
    Failed {
        error: String,
    },
}

impl Job {
    fn is_terminal(&self) -> bool {
        matches!(self, Job::Done { .. } | Job::Failed { .. })
    }
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    jobs: HashMap<u64, Job>,
    /// Terminal job ids, oldest first — the GC order.
    terminal_order: VecDeque<u64>,
}

/// Lifetime counters (see [`ServerStats`]); the queue fields are sampled
/// live.
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    gced: AtomicU64,
}

struct Shared {
    service: Arc<TuningService>,
    config: ServerConfig,
    jobs: Mutex<JobTable>,
    queue: TaskQueue<u64>,
    counters: Counters,
    shutdown: AtomicBool,
    /// Long-lived execution pool for remote SpMV: connection threads run
    /// finished kernels here, so a `Request::Spmv` never spawns a thread
    /// and never queues behind the tuning workers' candidate batches.
    /// Sub-threshold SpMVs (the common small-matrix case) resolve to one
    /// worker and run inline on their connection thread — fully concurrent;
    /// only genuinely multi-worker kernels serialise on the pool, where
    /// each already uses several cores (work-conserving under load).
    exec_pool: alpha_parallel::Pool,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let store = self.service.store_stats();
        ServerStats {
            store_memory_hits: store.memory_hits as u64,
            store_disk_loads: store.disk_loads as u64,
            store_cold_starts: store.cold_starts as u64,
            store_evictions: store.evictions as u64,
            jobs_submitted: self.counters.submitted.load(Ordering::Relaxed),
            jobs_rejected: self.counters.rejected.load(Ordering::Relaxed),
            jobs_completed: self.counters.completed.load(Ordering::Relaxed),
            jobs_failed: self.counters.failed.load(Ordering::Relaxed),
            jobs_gced: self.counters.gced.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_capacity: self.queue.capacity() as u64,
        }
    }

    /// Marks a job terminal and garbage-collects the oldest terminal
    /// records beyond the configured bound.
    fn finish_job(&self, job_id: u64, outcome: Job) {
        debug_assert!(outcome.is_terminal());
        let mut table = self.jobs.lock().expect("job table poisoned");
        match &outcome {
            Job::Done { .. } => self.counters.completed.fetch_add(1, Ordering::Relaxed),
            _ => self.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        table.jobs.insert(job_id, outcome);
        table.terminal_order.push_back(job_id);
        while table.terminal_order.len() > self.config.max_terminal_jobs {
            let oldest = table.terminal_order.pop_front().expect("len checked");
            table.jobs.remove(&oldest);
            self.counters.gced.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A running daemon: the accept loop, its tuning worker pool, and the
/// connection threads they spawn.
///
/// The server binds in [`NetServer::spawn`] and runs until a
/// [`Request::Shutdown`] frame arrives (or [`NetServer::request_shutdown`]
/// is called locally); [`NetServer::join`] then reaps every thread for a
/// clean exit.  Connect clients to [`NetServer::local_addr`].
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    connection_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and the tuning worker pool over `service`.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        service: TuningService,
        config: ServerConfig,
    ) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Proto(e.into()))?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::Proto(e.into()))?;
        let shared = Arc::new(Shared {
            service: Arc::new(service),
            config,
            jobs: Mutex::new(JobTable::default()),
            queue: TaskQueue::bounded(config.queue_capacity),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            exec_pool: alpha_parallel::Pool::new(0),
        });

        let worker_count = if config.workers == 0 {
            alpha_parallel::default_threads().min(4)
        } else {
            config.workers
        };
        let mut worker_handles = Vec::with_capacity(worker_count);
        for worker in 0..worker_count {
            let shared = shared.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("alpha-net-worker-{worker}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns"),
            );
        }

        let connection_handles = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shared = shared.clone();
            let connection_handles = connection_handles.clone();
            std::thread::Builder::new()
                .name("alpha-net-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &connection_handles))
                .expect("accept thread spawns")
        };

        Ok(NetServer {
            addr: local,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
            connection_handles,
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live daemon counters (the same snapshot a
    /// [`Request::StoreStats`] frame returns).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Initiates shutdown from the hosting process, exactly as a
    /// [`Request::Shutdown`] frame would: stop admitting, drain the queue,
    /// wake the accept loop.
    pub fn request_shutdown(&self) {
        initiate_shutdown(&self.shared, self.addr);
    }

    /// Waits for the daemon to finish shutting down: the accept loop, every
    /// connection thread and every tuning worker.  Call after a shutdown
    /// was requested (by a client frame or
    /// [`NetServer::request_shutdown`]); the in-flight jobs still queued at
    /// shutdown are completed, not dropped.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // The accept loop has exited, so no new connection threads appear.
        let connections = std::mem::take(
            &mut *self
                .connection_handles
                .lock()
                .expect("connection registry poisoned"),
        );
        for handle in connections {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("workers", &self.worker_handles.len())
            .field("stats", &self.shared.stats())
            .finish()
    }
}

/// Flags the daemon as shutting down, closes the queue (workers drain and
/// exit) and pokes the accept loop awake with a throwaway connection.
fn initiate_shutdown(shared: &Shared, addr: SocketAddr) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // Already shutting down.
    }
    shared.queue.close();
    // The accept loop blocks in `incoming()`; a loopback connection makes it
    // re-check the flag.  Failure is fine — the listener may already be gone.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connection_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = shared.clone();
        // Under resource exhaustion (thread limits), shed the connection
        // instead of panicking the accept loop: dropping the stream closes
        // it, and the daemon keeps accepting once pressure eases.
        let spawned = std::thread::Builder::new()
            .name("alpha-net-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
        let Ok(handle) = spawned else { continue };
        let mut registry = connection_handles
            .lock()
            .expect("connection registry poisoned");
        // Reap threads of already-closed connections on every accept, so a
        // long-lived daemon's registry tracks *live* sessions instead of
        // growing with every connection ever served.
        let mut i = 0;
        while i < registry.len() {
            if registry[i].is_finished() {
                let _ = registry.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        registry.push(handle);
    }
}

/// One tuning worker: drains job ids from the queue until it is closed and
/// empty, tuning each through the shared service.
fn worker_loop(shared: &Shared) {
    while let Some(job_id) = shared.queue.pop() {
        let (request, queue_wait_secs) = {
            let mut table = shared.jobs.lock().expect("job table poisoned");
            match table.jobs.insert(job_id, Job::Running) {
                Some(Job::Queued { request, enqueued }) => {
                    (request, enqueued.elapsed().as_secs_f64())
                }
                // The entry must exist and be queued — submission inserted
                // it before pushing the id.  Anything else is a logic bug;
                // recover by dropping the phantom id.
                _ => {
                    table.jobs.remove(&job_id);
                    continue;
                }
            }
        };
        let mut served = shared.service.tune_batch(&[*request]);
        let outcome = match served.pop().expect("one request yields one result") {
            Ok(tune) => Job::Done {
                summary: JobSummary {
                    gflops: tune.tuned.gflops(),
                    operator_graph: tune.tuned.operator_graph(),
                    fresh_evaluations: tune.fresh_evaluations as u64,
                    warm_started: tune.warm_started,
                    wall_secs: tune.wall_secs,
                    queue_wait_secs,
                },
                tuned: Arc::new(tune.tuned),
            },
            Err(error) => Job::Failed { error },
        };
        shared.finish_job(job_id, outcome);
    }
}

/// Serves one client connection: a request/response loop over frames.
/// Framing errors close the connection (after a best-effort typed error
/// frame); payload-level errors answer typed errors and keep the session
/// alive — the stream is still in sync.
fn connection_loop(mut stream: TcpStream, shared: &Shared) {
    // Nagle off: responses are complete frames, and letting them sit in the
    // kernel waiting for a delayed ACK adds ~40 ms to every round trip.
    let _ = stream.set_nodelay(true);
    // The read timeout is the shutdown-poll period: an idle connection
    // re-checks the flag this often, so `NetServer::join` never waits on a
    // client that simply stopped talking.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(payload) => payload,
            Err(ProtoError::Closed) => return,
            Err(ProtoError::Idle) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // Idle client during shutdown: close the session.
                }
                continue;
            }
            Err(e) => {
                let _ = respond(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::BadFrame,
                        message: e.to_string(),
                    },
                );
                return; // Framing is lost; the connection cannot continue.
            }
        };
        let request = match decode_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                // The frame boundary held, so the session survives a bad
                // payload.
                if respond(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::BadFrame,
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        if is_shutdown {
            // The server side of this connection is the daemon's own
            // address — exactly what the accept-loop poke needs.
            if let Ok(addr) = stream.local_addr() {
                initiate_shutdown(shared, addr);
            }
        }
        let response = handle_request(shared, request);
        if respond(&mut stream, &response).is_err() {
            return;
        }
        if is_shutdown {
            return;
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response) -> Result<(), ProtoError> {
    write_frame(stream, &encode_response(response))
}

fn handle_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::SubmitTune { matrix, device } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return Response::Error {
                    kind: ErrorKind::ShuttingDown,
                    message: "daemon is shutting down; no new work accepted".to_string(),
                };
            }
            let Some(profile) = device_by_name(&device) else {
                return Response::Error {
                    kind: ErrorKind::UnknownDevice,
                    message: format!("unknown device {device:?} (try A100, RTX2080 or TestGPU)"),
                };
            };
            let request = TuneRequest::new(matrix, profile);
            let job_id = {
                let mut table = shared.jobs.lock().expect("job table poisoned");
                let job_id = table.next_id;
                table.next_id += 1;
                table.jobs.insert(
                    job_id,
                    Job::Queued {
                        request: Box::new(request),
                        enqueued: std::time::Instant::now(),
                    },
                );
                job_id
            };
            match shared.queue.try_push(job_id) {
                Ok(()) => {
                    shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
                    Response::Submitted { job_id }
                }
                Err(push_error) => {
                    // Admission failed: nothing must remain of the job.
                    shared
                        .jobs
                        .lock()
                        .expect("job table poisoned")
                        .jobs
                        .remove(&job_id);
                    match push_error {
                        PushError::Full(_) => {
                            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                            Response::Busy {
                                queue_capacity: shared.queue.capacity() as u64,
                            }
                        }
                        PushError::Closed(_) => Response::Error {
                            kind: ErrorKind::ShuttingDown,
                            message: "daemon is shutting down; no new work accepted".to_string(),
                        },
                    }
                }
            }
        }
        Request::PollJob { job_id } => {
            let table = shared.jobs.lock().expect("job table poisoned");
            let state = match table.jobs.get(&job_id) {
                None => JobState::Unknown,
                Some(Job::Queued { .. }) => JobState::Queued,
                Some(Job::Running) => JobState::Running,
                Some(Job::Done { summary, .. }) => JobState::Done(summary.clone()),
                Some(Job::Failed { error }) => JobState::Failed {
                    error: error.clone(),
                },
            };
            Response::Status { job_id, state }
        }
        Request::Spmv { job_id, x } => {
            let tuned = {
                let table = shared.jobs.lock().expect("job table poisoned");
                match table.jobs.get(&job_id) {
                    None => {
                        return Response::Error {
                            kind: ErrorKind::UnknownJob,
                            message: format!(
                                "job {job_id} was never issued or has been garbage-collected"
                            ),
                        };
                    }
                    Some(Job::Queued { .. }) | Some(Job::Running) => {
                        return Response::Error {
                            kind: ErrorKind::JobNotReady,
                            message: format!("job {job_id} is still tuning; poll until Done"),
                        };
                    }
                    Some(Job::Failed { error }) => {
                        return Response::Error {
                            kind: ErrorKind::JobNotReady,
                            message: format!("job {job_id} failed: {error}"),
                        };
                    }
                    Some(Job::Done { tuned, .. }) => tuned.clone(),
                }
            };
            // The kernel runs outside the table lock (a long SpMV must not
            // block submissions and polls) on the daemon's persistent
            // execution pool — remote SpMV never spawns threads.
            match tuned.run_with_pool(&x, &shared.exec_pool) {
                Ok(y) => Response::SpmvResult { y },
                Err(e) => Response::Error {
                    kind: ErrorKind::InvalidInput,
                    message: e,
                },
            }
        }
        Request::StoreStats => Response::Stats(shared.stats()),
        // The state transition happened in the connection loop (it knows the
        // daemon's address for the accept-loop poke); only the ack is left.
        Request::Shutdown => Response::ShuttingDown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_names_resolve_case_insensitively() {
        assert_eq!(device_by_name("a100").unwrap().name, "A100");
        assert_eq!(device_by_name("RTX2080").unwrap().name, "RTX2080");
        assert_eq!(device_by_name("testgpu").unwrap().name, "TestGPU");
        assert!(device_by_name("H100").is_none());
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert!(config.queue_capacity > 0);
        assert!(config.max_terminal_jobs > 0);
    }
}
