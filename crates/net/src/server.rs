//! The `alpha-net` daemon: an event-loop TCP server that puts the whole
//! tuning pipeline behind a socket.
//!
//! ```text
//!                     ┌────────────── event loop (1 thread) ──────────────┐
//!   TCP ── accept ──▶ │ reactor (epoll/kqueue) ── per-conn frame         │
//!                     │   nonblocking sockets     reassembly + outbox    │
//!                     └──────┬──────────────▲──────────────▲─────────────┘
//!            SubmitTune      │try_push      │Busy(retry)   │completions + waker
//!                            ▼              │              │
//!            sharded job queue (hashed by tenant) ── tune workers
//!                            │                              ▲
//!            Spmv ──▶ exec queue ───── exec workers ────────┘
//!                            │
//!            PollJob ◀── sharded job table (global-FIFO terminal GC)
//! ```
//!
//! Three structural properties, each an answer to a production failure
//! mode:
//!
//! * **No thread per socket.**  One event-loop thread multiplexes every
//!   connection through a [`Reactor`]: readiness-driven nonblocking reads
//!   feed per-connection [`FrameAssembler`]s (the frame-before-trust,
//!   slow-loris-deadline and chunked-receive invariants carry over from the
//!   blocking reader), and responses drain through per-connection outboxes
//!   with partial-write tracking.  256 idle connections cost 256 small
//!   structs, not 256 stacks.
//! * **Sharded state.**  The job table is split across N shards with
//!   per-shard locks (terminal GC keeps one global FIFO so the retention
//!   window stays exact), and the admission queue is a
//!   [`ShardedTaskQueue`] hashed by tenant — one tenant's storm lands in
//!   one shard while workers drain shards round-robin.
//! * **Weighted multi-tenant admission.**  Connections identify as a
//!   tenant with [`Request::Hello`]; each tenant's queue credit is its
//!   weight share of the capacity across *active* tenants, so a tuning
//!   storm from one tenant cannot starve another's submissions — and SpMV
//!   traffic is never shed at admission at all.  Rejections carry a
//!   `retry_after_ms` estimate derived from the measured tuning EWMA and
//!   current queue depth.
//!
//! Long-running work never blocks the loop: tuning runs on worker threads
//! that drain the sharded queue, and remote SpMV is offloaded to exec
//! workers that post completed response frames back through a completion
//! list plus reactor wake.  While a connection has an SpMV in flight its
//! subsequent requests are deferred (per-connection FIFO responses), not
//! reordered.

use crate::proto::{
    decode_request_versioned, encode_response, write_frame_versioned, ErrorKind, FrameAssembler,
    JobState, JobSummary, Request, Response, ServerStats, TenantStats, MAX_FRAME_SECS,
    PROTOCOL_VERSION,
};
use crate::reactor::{Event, Interest, Reactor, Waker};
use crate::NetError;
use alpha_gpu::DeviceProfile;
use alpha_matrix::Scalar;
use alpha_parallel::{PushError, ShardedTaskQueue, TaskQueue};
use alpha_serve::{TuneRequest, TuningService};
use alpha_telemetry::{Counter, FlightKind, FlightRecorder, Gauge, Histogram, Registry};
use alphasparse::TunedSpmv;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Resolves a wire device name to a device profile.  Matching is
/// case-insensitive over the built-in profiles (`A100`, `RTX2080`,
/// `TestGPU`).
pub fn device_by_name(name: &str) -> Option<DeviceProfile> {
    [
        DeviceProfile::a100(),
        DeviceProfile::rtx2080(),
        DeviceProfile::test_profile(),
    ]
    .into_iter()
    .find(|profile| profile.name.eq_ignore_ascii_case(name))
}

/// Tunables of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Jobs the admission queue holds before new submissions are rejected
    /// with backpressure.
    pub queue_capacity: usize,
    /// Tuning worker threads draining the queue (0 = one per available
    /// core, capped at 4 — tuning saturates cores on its own).
    pub workers: usize,
    /// Terminal (done/failed) job records kept before the oldest are
    /// garbage-collected.  GC'd jobs poll as
    /// [`JobState::Unknown`](crate::proto::JobState::Unknown).
    pub max_terminal_jobs: usize,
    /// Shards for the job table and admission queue (0 = auto: 8).  More
    /// shards means less lock contention between unrelated requests; a
    /// context key always maps to one shard, so correctness is unaffected.
    pub shards: usize,
    /// Wall-clock budget for one frame to arrive completely, measured from
    /// its first byte — the slow-loris bound.  Defaults to
    /// [`MAX_FRAME_SECS`]; chaos tests shrink it to trip fast.
    pub frame_deadline: Duration,
    /// Per-tenant admission weights as `(client_id, weight)` pairs; tenants
    /// not listed (including the anonymous tenant 0) get weight 1.  A
    /// tenant's queue credit is its weight share of `queue_capacity` over
    /// the currently *active* tenants.
    pub tenant_weights: Vec<(u64, u64)>,
    /// Address of the plaintext HTTP debug endpoint (`GET /metrics` answers
    /// the Prometheus text exposition, `GET /debug/flightrec` the flight
    /// recorder's JSON dump).  Served by the same event loop — no extra
    /// thread, and a stalled scraper can never block the frame protocol.
    /// `None` disables the endpoint.
    pub metrics_addr: Option<SocketAddr>,
    /// Slow-request threshold, µs.  A traced request whose in-server time
    /// (queue wait + execution) reaches this bound gets its flight-recorder
    /// events pinned, so the requests most worth diagnosing survive ring
    /// wrap.  `0` disables pinning.
    pub slow_request_us: u64,
    /// Where to dump the flight recorder's JSON on daemon shutdown (the
    /// black box survives the crash site).  `None` skips the dump.
    pub flightrec_dump: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            workers: 0,
            max_terminal_jobs: 1024,
            shards: 0,
            frame_deadline: Duration::from_secs(MAX_FRAME_SECS),
            tenant_weights: Vec::new(),
            metrics_addr: None,
            slow_request_us: 500_000,
            flightrec_dump: None,
        }
    }
}

/// One job's lifecycle record in the sharded in-memory table.
enum Job {
    Queued {
        request: Box<TuneRequest>,
        /// When the job was admitted — a tuning worker turns this into the
        /// queue-wait component of the job's [`JobSummary`].
        enqueued: Instant,
        /// Submitting tenant, for fairness accounting at completion.
        tenant: u64,
        /// The submitting request's trace id (0 = untraced v4 client); the
        /// worker threads it into its spans and flight events.
        trace_id: u64,
    },
    Running,
    Done {
        tuned: Arc<TunedSpmv>,
        summary: JobSummary,
    },
    Failed {
        error: String,
    },
}

impl Job {
    fn is_terminal(&self) -> bool {
        matches!(self, Job::Done { .. } | Job::Failed { .. })
    }
}

/// Lifetime counters (see [`ServerStats`]); the queue fields are sampled
/// live.
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    gced: AtomicU64,
}

/// One tenant's fairness ledger.
struct TenantState {
    weight: u64,
    submitted: u64,
    rejected: u64,
    completed: u64,
    /// Jobs currently sitting in the admission queue (decremented when a
    /// worker picks the job up) — the quantity the credit bound applies to.
    queued: u64,
}

/// A remote SpMV offloaded off the event loop.
struct ExecTask {
    token: usize,
    tuned: Arc<TunedSpmv>,
    x: Vec<Scalar>,
    /// When the event loop received the request — start of the
    /// `net_spmv_latency_us` window, so the histogram covers exec-queue
    /// wait plus kernel time, the latency the client actually eats.
    received: Instant,
    /// The requesting frame's protocol version — the completion frame must
    /// carry the same stamp.
    version: u32,
    /// The request's trace id (0 = untraced).
    trace_id: u64,
    /// The connection's tenant, for flight-recorder attribution.
    tenant: u64,
    /// The executed job, for flight-recorder attribution.
    job_id: u64,
}

struct Shared {
    service: Arc<TuningService>,
    config: ServerConfig,
    /// Job records, sharded by `job_id % shards` with per-shard locks.
    job_shards: Vec<Mutex<HashMap<u64, Job>>>,
    next_job_id: AtomicU64,
    /// Terminal job ids, oldest first — the GC order.  Deliberately global
    /// (one small lock touched once per job *completion*, not per request)
    /// so the retention window is exact FIFO across shards.
    terminal_order: Mutex<VecDeque<u64>>,
    /// Admission queue, sharded by tenant hash: workers drain shards
    /// round-robin, so queued tenants share worker attention.
    queue: ShardedTaskQueue<u64>,
    /// SpMV offload lane: the event loop pushes, exec workers pop.
    exec_queue: TaskQueue<ExecTask>,
    /// Finished SpMV response frames waiting for the loop to collect
    /// (token, encoded frame); posting wakes the reactor.
    completions: Mutex<Vec<(usize, Vec<u8>)>>,
    /// Offloaded SpMVs not yet delivered into an outbox — drained to zero
    /// before a shutdown completes.
    exec_inflight: AtomicU64,
    tenants: Mutex<BTreeMap<u64, TenantState>>,
    counters: Counters,
    shutdown: AtomicBool,
    open_connections: AtomicU64,
    /// EWMA of tuning execution time in microseconds (0 = no sample yet);
    /// the basis of the `retry_after_ms` hint in `Busy` responses.
    tune_ewma_us: AtomicU64,
    worker_count: usize,
    /// Long-lived execution pool for remote SpMV: exec workers run finished
    /// kernels here, so a `Request::Spmv` never spawns a thread and never
    /// queues behind the tuning workers' candidate batches.
    exec_pool: alpha_parallel::Pool,
    waker: Waker,
    /// The service's telemetry registry.  The daemon layers its own wire-
    /// and loop-level families on top of the store/search/kernel metrics
    /// the lower layers already record there, so one scrape sees the whole
    /// pipeline.
    registry: Arc<Registry>,
    /// Seconds (as µs buckets) a tune job waited in the admission queue.
    tune_queue_wait: Histogram,
    /// Tuning execution time per job, µs.
    tune_exec: Histogram,
    /// Server-side SpMV latency: request receipt to response posted, µs.
    spmv_latency: Histogram,
    /// Event-loop work per tick (poll wait excluded), µs — the "never
    /// blocks the loop" invariant, measured.
    tick_hist: Histogram,
    /// Decoded-but-undispatched requests across all connections.
    deferred_depth: Gauge,
    /// Scrapes answered on the HTTP metrics endpoint.
    http_scrapes: Counter,
    /// The always-on black box: request lifecycle events for after-the-fact
    /// diagnosis, dumpable via `GET /debug/flightrec` and at shutdown.
    flightrec: Arc<FlightRecorder>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let store = self.service.store_stats();
        let jobs_resident: usize = self
            .job_shards
            .iter()
            .map(|s| s.lock().expect("job table poisoned").len())
            .sum();
        ServerStats {
            store_memory_hits: store.memory_hits as u64,
            store_disk_loads: store.disk_loads as u64,
            store_cold_starts: store.cold_starts as u64,
            store_evictions: store.evictions as u64,
            jobs_submitted: self.counters.submitted.load(Ordering::Relaxed),
            jobs_rejected: self.counters.rejected.load(Ordering::Relaxed),
            jobs_completed: self.counters.completed.load(Ordering::Relaxed),
            jobs_failed: self.counters.failed.load(Ordering::Relaxed),
            jobs_gced: self.counters.gced.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_capacity: self.queue.capacity() as u64,
            jobs_resident: jobs_resident as u64,
            open_connections: self.open_connections.load(Ordering::Relaxed),
        }
    }

    fn job_shard(&self, job_id: u64) -> &Mutex<HashMap<u64, Job>> {
        &self.job_shards[(job_id % self.job_shards.len() as u64) as usize]
    }

    fn tenant_weight(&self, client_id: u64) -> u64 {
        self.config
            .tenant_weights
            .iter()
            .find(|(id, _)| *id == client_id)
            .map(|(_, w)| (*w).max(1))
            .unwrap_or(1)
    }

    /// The daemon's estimate of when a shed submission is worth retrying:
    /// measured tuning EWMA scaled by the queue backlog per worker, clamped
    /// to [1 ms, 10 s].  Before any job has finished the estimate is a flat
    /// 50 ms.
    fn retry_after_ms(&self) -> u64 {
        let ewma_us = self.tune_ewma_us.load(Ordering::Relaxed);
        if ewma_us == 0 {
            return 50;
        }
        let backlog = (self.queue.len() as u64).max(1);
        let per_worker = backlog.div_ceil(self.worker_count.max(1) as u64);
        (ewma_us / 1000).saturating_mul(per_worker).clamp(1, 10_000)
    }

    /// Weighted admission: the tenant may hold at most
    /// `max(1, queue_capacity · w / W_active)` queued jobs, where
    /// `W_active` sums the weights of tenants with queued work (the
    /// requester included).  With a single active tenant the credit is the
    /// whole capacity — exactly the unweighted daemon — and with rivals it
    /// degrades proportionally, never to zero.
    fn try_admit(&self, tenant_id: u64) -> Result<(), Response> {
        let mut tenants = self.tenants.lock().expect("tenant table poisoned");
        let weight = self.tenant_weight(tenant_id);
        tenants.entry(tenant_id).or_insert_with(|| TenantState {
            weight,
            submitted: 0,
            rejected: 0,
            completed: 0,
            queued: 0,
        });
        let mut w_active = 0u64;
        for (id, t) in tenants.iter() {
            if t.queued > 0 || *id == tenant_id {
                w_active += t.weight;
            }
        }
        let capacity = self.queue.capacity() as u64;
        let me = tenants.get_mut(&tenant_id).expect("just inserted");
        let credit = ((capacity * me.weight) / w_active.max(1)).max(1);
        if me.queued >= credit {
            me.rejected += 1;
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(Response::Busy {
                queue_capacity: capacity,
                retry_after_ms: self.retry_after_ms(),
            });
        }
        me.queued += 1;
        me.submitted += 1;
        Ok(())
    }

    /// Rolls back a [`Shared::try_admit`] whose queue push failed.
    fn unadmit(&self, tenant_id: u64, shed: bool) {
        let mut tenants = self.tenants.lock().expect("tenant table poisoned");
        if let Some(t) = tenants.get_mut(&tenant_id) {
            t.queued = t.queued.saturating_sub(1);
            t.submitted = t.submitted.saturating_sub(1);
            if shed {
                t.rejected += 1;
            }
        }
    }

    fn tenant_snapshot(&self) -> Vec<TenantStats> {
        let tenants = self.tenants.lock().expect("tenant table poisoned");
        tenants
            .iter()
            .map(|(id, t)| TenantStats {
                client_id: *id,
                weight: t.weight,
                submitted: t.submitted,
                rejected: t.rejected,
                completed: t.completed,
                queued: t.queued,
            })
            .collect()
    }

    /// Marks a job terminal, credits its tenant, and garbage-collects the
    /// oldest terminal records beyond the configured bound.
    fn finish_job(&self, job_id: u64, tenant: u64, outcome: Job) {
        debug_assert!(outcome.is_terminal());
        let done = matches!(outcome, Job::Done { .. });
        if done {
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut tenants = self.tenants.lock().expect("tenant table poisoned");
            if let Some(t) = tenants.get_mut(&tenant) {
                if done {
                    t.completed += 1;
                }
            }
        }
        self.job_shard(job_id)
            .lock()
            .expect("job table poisoned")
            .insert(job_id, outcome);
        // Global FIFO GC: the oldest terminal record anywhere goes first,
        // exactly as in the single-lock table.
        let mut order = self.terminal_order.lock().expect("terminal order poisoned");
        order.push_back(job_id);
        while order.len() > self.config.max_terminal_jobs {
            let oldest = order.pop_front().expect("len checked");
            self.job_shard(oldest)
                .lock()
                .expect("job table poisoned")
                .remove(&oldest);
            self.counters.gced.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Slow-request policy: a traced request whose in-server time crossed
    /// [`ServerConfig::slow_request_us`] gets its flight events pinned so
    /// they survive ring wrap.
    fn pin_if_slow(&self, trace_id: u64, total_us: u64) {
        let threshold = self.config.slow_request_us;
        if threshold > 0 && trace_id != 0 && total_us >= threshold {
            self.flightrec.pin(trace_id);
        }
    }

    /// Flags the daemon as shutting down, closes the admission queue
    /// (tuning workers drain and exit) and wakes the event loop.
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // Already shutting down.
        }
        self.queue.close();
        self.waker.wake();
    }
}

/// A running daemon: the event-loop thread, its tuning worker pool, and the
/// SpMV exec workers.
///
/// The server binds in [`NetServer::spawn`] and runs until a
/// [`Request::Shutdown`] frame arrives (or [`NetServer::request_shutdown`]
/// is called locally); [`NetServer::join`] then reaps every thread for a
/// clean exit.  Connect clients to [`NetServer::local_addr`].
pub struct NetServer {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    loop_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    exec_handles: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the event
    /// loop, the tuning worker pool and the SpMV exec workers over
    /// `service`.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        service: TuningService,
        config: ServerConfig,
    ) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Proto(e.into()))?;
        let local = listener
            .local_addr()
            .map_err(|e| NetError::Proto(e.into()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Proto(e.into()))?;
        let reactor = Reactor::new().map_err(|e| NetError::Proto(e.into()))?;
        let waker = reactor.waker();
        let metrics_listener = match config.metrics_addr {
            Some(metrics_addr) => {
                let metrics_listener =
                    TcpListener::bind(metrics_addr).map_err(|e| NetError::Proto(e.into()))?;
                metrics_listener
                    .set_nonblocking(true)
                    .map_err(|e| NetError::Proto(e.into()))?;
                Some(metrics_listener)
            }
            None => None,
        };
        let metrics_local = metrics_listener.as_ref().and_then(|l| l.local_addr().ok());
        let registry = service.registry().clone();

        let shards = if config.shards == 0 { 8 } else { config.shards };
        let worker_count = if config.workers == 0 {
            alpha_parallel::default_threads().min(4)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            service: Arc::new(service),
            job_shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            next_job_id: AtomicU64::new(0),
            terminal_order: Mutex::new(VecDeque::new()),
            queue: ShardedTaskQueue::bounded(config.queue_capacity, shards),
            exec_queue: TaskQueue::bounded(1024),
            completions: Mutex::new(Vec::new()),
            exec_inflight: AtomicU64::new(0),
            tenants: Mutex::new(BTreeMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            open_connections: AtomicU64::new(0),
            tune_ewma_us: AtomicU64::new(0),
            worker_count,
            exec_pool: alpha_parallel::Pool::new(0),
            waker,
            config,
            tune_queue_wait: registry.histogram("net_tune_queue_wait_us", &[]),
            tune_exec: registry.histogram("net_tune_exec_us", &[]),
            spmv_latency: registry.histogram("net_spmv_latency_us", &[]),
            tick_hist: registry.histogram("net_loop_tick_us", &[]),
            deferred_depth: registry.gauge("net_deferred_depth", &[]),
            http_scrapes: registry.counter("net_http_scrapes_total", &[]),
            flightrec: Arc::new(FlightRecorder::default()),
            registry,
        });

        let mut worker_handles = Vec::with_capacity(worker_count);
        for worker in 0..worker_count {
            let shared = shared.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("alpha-net-worker-{worker}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns"),
            );
        }
        let exec_count = alpha_parallel::default_threads().min(4);
        let mut exec_handles = Vec::with_capacity(exec_count);
        for exec in 0..exec_count {
            let shared = shared.clone();
            exec_handles.push(
                std::thread::Builder::new()
                    .name(format!("alpha-net-exec-{exec}"))
                    .spawn(move || exec_loop(&shared))
                    .expect("exec thread spawns"),
            );
        }
        let loop_handle = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("alpha-net-loop".to_string())
                .spawn(move || EventLoop::new(reactor, listener, metrics_listener, shared).run())
                .expect("event-loop thread spawns")
        };

        Ok(NetServer {
            addr: local,
            metrics_addr: metrics_local,
            shared,
            loop_handle: Some(loop_handle),
            worker_handles,
            exec_handles,
        })
    }

    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address of the HTTP metrics endpoint, when
    /// [`ServerConfig::metrics_addr`] configured one (resolved, so a port-0
    /// request reports the real ephemeral port).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The daemon's telemetry registry — shared with the underlying
    /// [`TuningService`], so it carries the whole pipeline's metric
    /// families, not just the wire-level ones.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Live daemon counters (the same snapshot a
    /// [`Request::StoreStats`] frame returns).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The daemon's always-on flight recorder (the same events
    /// `GET /debug/flightrec` dumps) — request lifecycle attribution
    /// without a tracing sink installed.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.shared.flightrec
    }

    /// Live per-tenant fairness accounting (the same snapshot a
    /// [`Request::TenantStats`] frame returns).
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.shared.tenant_snapshot()
    }

    /// Initiates shutdown from the hosting process, exactly as a
    /// [`Request::Shutdown`] frame would: stop admitting, drain the queue,
    /// wake the event loop.
    pub fn request_shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Waits for the daemon to finish shutting down: the event loop, every
    /// tuning worker and every exec worker.  Call after a shutdown was
    /// requested (by a client frame or [`NetServer::request_shutdown`]);
    /// the in-flight jobs still queued at shutdown are completed, not
    /// dropped.
    pub fn join(mut self) {
        if let Some(handle) = self.loop_handle.take() {
            let _ = handle.join();
        }
        // The loop closed the exec queue on exit; both pools drain and stop.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        for handle in self.exec_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("workers", &self.worker_handles.len())
            .field("stats", &self.shared.stats())
            .finish()
    }
}

/// One tuning worker: drains job ids from the sharded queue until it is
/// closed and empty, tuning each through the shared service.
fn worker_loop(shared: &Shared) {
    while let Some(job_id) = shared.queue.pop() {
        let (request, queue_wait_secs, tenant, trace_id) = {
            let mut table = shared.job_shard(job_id).lock().expect("job table poisoned");
            match table.remove(&job_id) {
                Some(Job::Queued {
                    request,
                    enqueued,
                    tenant,
                    trace_id,
                }) => {
                    table.insert(job_id, Job::Running);
                    (request, enqueued.elapsed().as_secs_f64(), tenant, trace_id)
                }
                // The entry must exist and be queued — submission inserted
                // it before pushing the id.  Anything else is a logic bug;
                // recover by dropping the phantom id.
                other => {
                    if let Some(job) = other {
                        table.insert(job_id, job);
                    }
                    continue;
                }
            }
        };
        // The job has left the queue: its tenant's credit frees up now.
        {
            let mut tenants = shared.tenants.lock().expect("tenant table poisoned");
            if let Some(t) = tenants.get_mut(&tenant) {
                t.queued = t.queued.saturating_sub(1);
            }
        }
        shared
            .tune_queue_wait
            .observe_duration(Duration::from_secs_f64(queue_wait_secs));
        // The request's trace id follows the job onto this thread: every
        // span below (including the search engine's own `search.l*` spans)
        // tags itself with it, and the queue wait becomes a retroactive
        // span bracketing [enqueue, pop].
        let prev_trace = alpha_telemetry::set_current_trace_id(trace_id);
        let wait_us = (queue_wait_secs * 1e6) as u64;
        alpha_telemetry::record_span(
            "net.queue_wait",
            alpha_telemetry::now_us().saturating_sub(wait_us),
            wait_us,
            Some(("job", job_id)),
        );
        shared.flightrec.record(
            FlightKind::QueuePop,
            &tenant.to_string(),
            trace_id,
            job_id,
            wait_us,
            "tune",
        );
        shared.flightrec.record(
            FlightKind::ExecStart,
            &tenant.to_string(),
            trace_id,
            job_id,
            0,
            "tune",
        );
        let started = Instant::now();
        // A hostile or degenerate matrix must cost its own job, never the
        // worker: a panicking search is caught and reported as a failed
        // job, keeping the worker pool at full strength.
        let service = shared.service.clone();
        let work = std::panic::AssertUnwindSafe(move || service.tune_batch(&[*request]));
        let mut served = {
            let _span = alpha_telemetry::span!("net.tune_exec", job = job_id);
            match std::panic::catch_unwind(work) {
                Ok(served) => served,
                Err(payload) => {
                    let what = panic_message(payload.as_ref());
                    vec![Err(format!("tuning panicked: {what}"))]
                }
            }
        };
        let exec_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        shared.tune_exec.observe(exec_us);
        shared.flightrec.record(
            FlightKind::ExecEnd,
            &tenant.to_string(),
            trace_id,
            job_id,
            exec_us,
            "tune",
        );
        // EWMA (α = 1/4) of tuning time feeds the Busy retry-after hint;
        // racy read-modify-write is fine for an estimate.
        let prev = shared.tune_ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 {
            exec_us
        } else {
            prev - prev / 4 + exec_us / 4
        };
        shared.tune_ewma_us.store(next.max(1), Ordering::Relaxed);
        let outcome = match served.pop().expect("one request yields one result") {
            Ok(tune) => Job::Done {
                summary: JobSummary {
                    gflops: tune.tuned.gflops(),
                    operator_graph: tune.tuned.operator_graph(),
                    fresh_evaluations: tune.fresh_evaluations as u64,
                    warm_started: tune.warm_started,
                    wall_secs: tune.wall_secs,
                    queue_wait_secs,
                    // Lowers the native kernel eagerly: Spmv requests for
                    // this job then hit a pre-resolved specialized loop.
                    kernel_shape: tune.tuned.kernel_shape(),
                    specialized: tune.tuned.is_specialized(),
                },
                tuned: Arc::new(tune.tuned),
            },
            Err(error) => {
                shared.flightrec.record(
                    FlightKind::Error,
                    &tenant.to_string(),
                    trace_id,
                    job_id,
                    0,
                    "tune_failed",
                );
                Job::Failed { error }
            }
        };
        shared.finish_job(job_id, tenant, outcome);
        // The job's total in-server latency (admission to terminal state);
        // over-threshold traces get their black-box events pinned.
        let total_us = wait_us.saturating_add(exec_us);
        shared.flightrec.record(
            FlightKind::Reply,
            &tenant.to_string(),
            trace_id,
            job_id,
            total_us,
            "tune",
        );
        shared.pin_if_slow(trace_id, total_us);
        alpha_telemetry::set_current_trace_id(prev_trace);
    }
}

/// Best-effort human-readable text out of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One exec worker: runs offloaded SpMVs on the shared execution pool and
/// posts the encoded response frame back to the event loop.  As in the
/// tuning lane, a panicking kernel costs its own request, not the worker.
fn exec_loop(shared: &Shared) {
    while let Some(task) = shared.exec_queue.pop() {
        let tenant_label = task.tenant.to_string();
        let prev_trace = alpha_telemetry::set_current_trace_id(task.trace_id);
        shared.flightrec.record(
            FlightKind::ExecStart,
            &tenant_label,
            task.trace_id,
            task.job_id,
            0,
            "spmv",
        );
        let started = Instant::now();
        let run =
            std::panic::AssertUnwindSafe(|| task.tuned.run_with_pool(&task.x, &shared.exec_pool));
        let outcome = {
            let _span = alpha_telemetry::span!("net.exec", job = task.job_id);
            std::panic::catch_unwind(run).unwrap_or_else(|payload| {
                Err(format!(
                    "SpMV panicked: {}",
                    panic_message(payload.as_ref())
                ))
            })
        };
        let exec_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        shared.flightrec.record(
            FlightKind::ExecEnd,
            &tenant_label,
            task.trace_id,
            task.job_id,
            exec_us,
            "spmv",
        );
        let response = match outcome {
            Ok(y) => Response::SpmvResult { y },
            Err(e) => {
                shared.flightrec.record(
                    FlightKind::Error,
                    &tenant_label,
                    task.trace_id,
                    task.job_id,
                    0,
                    "spmv_failed",
                );
                Response::Error {
                    kind: ErrorKind::InvalidInput,
                    message: e,
                }
            }
        };
        // The latency the client eats: exec-queue wait plus kernel time.
        let total_us = task.received.elapsed().as_micros().min(u64::MAX as u128) as u64;
        shared.spmv_latency.observe(total_us);
        shared.flightrec.record(
            FlightKind::Reply,
            &tenant_label,
            task.trace_id,
            task.job_id,
            total_us,
            "spmv",
        );
        shared.pin_if_slow(task.trace_id, total_us);
        alpha_telemetry::set_current_trace_id(prev_trace);
        shared
            .completions
            .lock()
            .expect("completions poisoned")
            .push((task.token, frame_bytes(task.version, &response)));
        shared.waker.wake();
    }
}

/// Encodes a response into raw frame bytes (header + payload) ready for an
/// outbox, stamped with the requesting connection's protocol version so a
/// v4 client reads v4 replies.
fn frame_bytes(version: u32, response: &Response) -> Vec<u8> {
    let payload = encode_response(response);
    let mut bytes = Vec::with_capacity(16 + payload.len());
    write_frame_versioned(&mut bytes, version, &payload).expect("responses fit the frame cap");
    bytes
}

/// Reactor token of the listening socket; connection tokens count up from
/// [`FIRST_CONN_TOKEN`].
const LISTENER_TOKEN: usize = 0;
/// Reactor token of the optional metrics HTTP listener.
const METRICS_LISTENER_TOKEN: usize = 1;
const FIRST_CONN_TOKEN: usize = 2;

/// Upper bound on one HTTP scrape request's head; a peer that sends more
/// is answered 400 and closed.
const MAX_HTTP_REQUEST: usize = 8 * 1024;

/// Wall-clock bound on one scrape connection, open to flushed.  A scraper
/// that dribbles its request or never drains the response is torn down —
/// the HTTP lane's slow-loris sweep.
const HTTP_DEADLINE: Duration = Duration::from_secs(10);

/// Deferred-request bound per connection: while an SpMV is in flight (or
/// the client pipelines faster than responses drain) at most this many
/// decoded requests wait; beyond it the connection's read interest drops
/// until the backlog drains — per-connection backpressure, not memory
/// growth.
const MAX_DEFERRED: usize = 64;

/// Grace period for flushing outboxes after a shutdown is requested.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(2);

/// Per-tenant wire counters, cached per connection so the hot request path
/// never formats a label or re-resolves a registry handle.
struct ConnMetrics {
    requests: Counter,
    busy: Counter,
    errors: Counter,
}

impl ConnMetrics {
    fn for_tenant(registry: &Registry, tenant: u64) -> ConnMetrics {
        let id = tenant.to_string();
        ConnMetrics {
            requests: registry.counter("net_requests_total", &[("tenant", &id)]),
            busy: registry.counter("net_busy_total", &[("tenant", &id)]),
            errors: registry.counter("net_errors_total", &[("tenant", &id)]),
        }
    }
}

/// One scrape connection on the metrics HTTP endpoint: a tiny request in,
/// one response out, close.  Deliberately not a [`Conn`] — no deferral, no
/// pipelining, no half-close support, so the frame protocol's state
/// machine stays untouched by the HTTP lane.
struct HttpConn {
    stream: TcpStream,
    /// Buffered request bytes, capped at [`MAX_HTTP_REQUEST`].
    buf: Vec<u8>,
    /// The encoded response, built once the request head completes.
    out: Vec<u8>,
    /// Bytes of `out` already written (partial-write cursor).
    out_pos: usize,
    /// The response is built; only flushing remains.
    responded: bool,
    /// The peer is gone or the response flushed; drop at reap.
    dead: bool,
    /// Accept time — start of the [`HTTP_DEADLINE`] window.
    opened: Instant,
}

/// Per-connection state machine: reassembly in, ordered responses out.
struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    /// Decoded `(frame version, request payload)` pairs waiting behind an
    /// in-flight SpMV — responses stay in request order.
    deferred: VecDeque<(u32, Vec<u8>)>,
    /// Encoded response frames awaiting socket capacity.
    outbox: VecDeque<Vec<u8>>,
    /// Bytes of `outbox.front()` already written (partial-write cursor).
    out_pos: usize,
    /// An offloaded SpMV is in flight; requests behind it are deferred.
    pending_exec: bool,
    /// Tenant identity from `Hello` (0 = anonymous).
    tenant: u64,
    /// Flush the outbox, then close (framing lost, slow-loris deadline, or
    /// shutdown ack sent) — no further requests are processed.
    close_after_flush: bool,
    /// The peer sent EOF: finish answering what already arrived (half-close
    /// support), then close.
    eof: bool,
    /// The peer is gone; drop as soon as the event is processed.
    dead: bool,
    /// Interest currently registered with the reactor.
    registered: Interest,
    /// Protocol version of the last frame this peer sent (defaults to
    /// [`PROTOCOL_VERSION`] until one arrives) — replies are stamped with
    /// it so a v4 client keeps reading v4 frames.
    proto_version: u32,
    /// Cached per-tenant counters, re-resolved when `Hello` rebinds the
    /// tenant.
    metrics: ConnMetrics,
}

impl Conn {
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.close_after_flush
                && !self.eof
                && !self.pending_exec
                && self.deferred.len() < MAX_DEFERRED,
            writable: !self.outbox.is_empty(),
        }
    }

    /// Nothing left to do for this connection: every owed response has been
    /// produced and flushed.
    fn drained(&self) -> bool {
        self.outbox.is_empty()
            && (self.close_after_flush
                || (self.eof && self.deferred.is_empty() && !self.pending_exec))
    }
}

struct EventLoop {
    reactor: Reactor,
    listener: TcpListener,
    /// The optional `GET /metrics` HTTP listener, sharing this reactor.
    metrics_listener: Option<TcpListener>,
    shared: Arc<Shared>,
    conns: HashMap<usize, Conn>,
    /// Scrape connections, keyed in the same token space as `conns`.
    http_conns: HashMap<usize, HttpConn>,
    next_token: usize,
    shutdown_at: Option<Instant>,
}

impl EventLoop {
    fn new(
        reactor: Reactor,
        listener: TcpListener,
        metrics_listener: Option<TcpListener>,
        shared: Arc<Shared>,
    ) -> EventLoop {
        EventLoop {
            reactor,
            listener,
            metrics_listener,
            shared,
            conns: HashMap::new(),
            http_conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            shutdown_at: None,
        }
    }

    fn run(mut self) {
        if self
            .reactor
            .register(
                self.listener.as_raw_fd(),
                LISTENER_TOKEN,
                Interest::READABLE,
            )
            .is_err()
        {
            return; // No reactor, no daemon.
        }
        if let Some(listener) = &self.metrics_listener {
            // A metrics listener that fails to register only disables the
            // endpoint; the daemon itself still runs.
            let _ = self.reactor.register(
                listener.as_raw_fd(),
                METRICS_LISTENER_TOKEN,
                Interest::READABLE,
            );
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            // The timeout doubles as the slow-loris sweep period and the
            // shutdown poll — no connection activity is needed to notice
            // either.
            let _ = self
                .reactor
                .poll(&mut events, Some(Duration::from_millis(100)));
            // The tick clock starts after poll returns: the histogram
            // measures loop *work*, not idle waiting.
            let tick_started = Instant::now();
            self.drain_completions();
            let batch: Vec<Event> = std::mem::take(&mut events);
            for event in batch {
                if event.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else if event.token == METRICS_LISTENER_TOKEN {
                    self.accept_metrics_ready();
                } else if self.http_conns.contains_key(&event.token) {
                    self.service_http(event);
                } else {
                    self.service_conn(event);
                }
            }
            self.sweep_deadlines();
            self.reap();
            let done = self.shutdown_tick();
            self.shared
                .tick_hist
                .observe_duration(tick_started.elapsed());
            if done {
                break;
            }
        }
        // Exit: close every socket, stop the exec lane (workers drain any
        // leftover tasks and exit; their completions go nowhere).
        let _ = self.reactor.deregister(self.listener.as_raw_fd());
        if let Some(listener) = &self.metrics_listener {
            let _ = self.reactor.deregister(listener.as_raw_fd());
        }
        for (_, conn) in self.conns.drain() {
            let _ = self.reactor.deregister(conn.stream.as_raw_fd());
            self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
            self.shared.deferred_depth.sub(conn.deferred.len() as i64);
        }
        for (_, conn) in self.http_conns.drain() {
            let _ = self.reactor.deregister(conn.stream.as_raw_fd());
        }
        self.shared.exec_queue.close();
        // The black box outlives the daemon: a configured dump path gets
        // the flight recorder's JSON on the way out, best-effort.
        if let Some(path) = &self.shared.config.flightrec_dump {
            let _ = std::fs::write(path, self.shared.flightrec.render_json());
        }
    }

    /// Delivers finished SpMV frames into their connections' outboxes and
    /// resumes the deferred request stream behind each.
    fn drain_completions(&mut self) {
        let completions: Vec<(usize, Vec<u8>)> = {
            let mut guard = self
                .shared
                .completions
                .lock()
                .expect("completions poisoned");
            std::mem::take(&mut *guard)
        };
        for (token, frame) in completions {
            self.shared.exec_inflight.fetch_sub(1, Ordering::Relaxed);
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // Connection died while its SpMV ran.
            };
            conn.outbox.push_back(frame);
            conn.pending_exec = false;
            self.pump(token);
        }
    }

    /// Accepts every connection the listener has ready.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        continue; // Accept-and-drop: no new sessions.
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Nagle off: responses are complete frames, and letting
                    // them sit waiting for a delayed ACK adds ~40 ms to
                    // every round trip.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .reactor
                        .register(stream.as_raw_fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        continue; // Shed the connection under fd pressure.
                    }
                    self.shared.open_connections.fetch_add(1, Ordering::Relaxed);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            assembler: FrameAssembler::with_deadline(
                                self.shared.config.frame_deadline,
                            ),
                            deferred: VecDeque::new(),
                            outbox: VecDeque::new(),
                            out_pos: 0,
                            pending_exec: false,
                            tenant: 0,
                            close_after_flush: false,
                            eof: false,
                            dead: false,
                            registered: Interest::READABLE,
                            proto_version: PROTOCOL_VERSION,
                            metrics: ConnMetrics::for_tenant(&self.shared.registry, 0),
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break, // Transient accept failure; retry next tick.
            }
        }
    }

    /// Accepts every scrape connection the metrics listener has ready.
    fn accept_metrics_ready(&mut self) {
        let Some(listener) = &self.metrics_listener else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .reactor
                        .register(stream.as_raw_fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.http_conns.insert(
                        token,
                        HttpConn {
                            stream,
                            buf: Vec::new(),
                            out: Vec::new(),
                            out_pos: 0,
                            responded: false,
                            dead: false,
                            opened: Instant::now(),
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Drives one scrape connection: buffer the request head, answer once
    /// it completes, flush, close.  The exposition is rendered from a
    /// registry snapshot — no lock is held across the socket write, and a
    /// stalled scraper only stalls its own connection.
    fn service_http(&mut self, event: Event) {
        let Some(conn) = self.http_conns.get_mut(&event.token) else {
            return;
        };
        if (event.readable || event.closed) && !conn.responded {
            let mut chunk = [0u8; 4096];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        if !head_complete(&conn.buf) {
                            conn.dead = true; // EOF before a full request.
                        }
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&chunk[..n]);
                        if conn.buf.len() > MAX_HTTP_REQUEST {
                            break; // Judged below: oversized head is a 400.
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if !conn.dead {
                if conn.buf.len() > MAX_HTTP_REQUEST {
                    conn.out =
                        http_response("400 Bad Request", TEXT_PLAIN, "request head too large\n");
                    conn.responded = true;
                } else if head_complete(&conn.buf) {
                    conn.out = match http_route(&conn.buf) {
                        HttpRoute::Metrics => {
                            self.shared.http_scrapes.inc();
                            http_response(
                                "200 OK",
                                PROMETHEUS_TEXT,
                                &self.shared.registry.render_prometheus(),
                            )
                        }
                        HttpRoute::FlightRec => http_response(
                            "200 OK",
                            "application/json",
                            &self.shared.flightrec.render_json(),
                        ),
                        HttpRoute::MethodNotAllowed => http_response(
                            "405 Method Not Allowed",
                            TEXT_PLAIN,
                            "only GET is supported\n",
                        ),
                        HttpRoute::NotFound => http_response(
                            "404 Not Found",
                            TEXT_PLAIN,
                            "try GET /metrics or GET /debug/flightrec\n",
                        ),
                    };
                    conn.responded = true;
                }
            }
        }
        if conn.responded && !conn.dead {
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.out_pos == conn.out.len() {
                conn.dead = true; // Flushed: HTTP/1.0, connection closes.
            } else if !conn.dead {
                let _ =
                    self.reactor
                        .modify(conn.stream.as_raw_fd(), event.token, Interest::WRITABLE);
            }
        }
    }

    /// Handles one readiness event for one connection.
    fn service_conn(&mut self, event: Event) {
        if !self.conns.contains_key(&event.token) {
            return; // Stale event for a connection dropped earlier this tick.
        }
        if event.readable || event.closed {
            self.read_ready(event.token);
        }
        if event.writable {
            self.pump(event.token);
        }
    }

    /// Reads whatever the socket has (bounded per tick so one firehose
    /// connection cannot starve the rest), feeds the assembler, and
    /// processes completed frames in order.
    fn read_ready(&mut self, token: usize) {
        let mut chunk = [0u8; 64 * 1024];
        let mut frames: Vec<(u32, Vec<u8>)> = Vec::new();
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            for _ in 0..4 {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // Peer EOF: answer what already arrived (the peer
                        // may have half-closed), then close.
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        if let Err(e) = conn.assembler.push(&chunk[..n], &mut frames) {
                            // Framing lost (bad magic/version/length): one
                            // best-effort typed error, then the connection
                            // cannot continue.
                            conn.outbox.push_back(frame_bytes(
                                conn.proto_version,
                                &Response::Error {
                                    kind: ErrorKind::BadFrame,
                                    message: e.to_string(),
                                },
                            ));
                            conn.close_after_flush = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            self.shared.deferred_depth.add(frames.len() as i64);
            for frame in frames {
                conn.deferred.push_back(frame);
            }
        }
        self.process_deferred(token);
        self.pump(token);
    }

    /// Processes a connection's deferred requests in order, stopping at the
    /// first SpMV offload (responses must stay FIFO per connection).
    fn process_deferred(&mut self, token: usize) {
        loop {
            let (version, payload) = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.pending_exec || conn.close_after_flush {
                    return;
                }
                match conn.deferred.pop_front() {
                    Some(entry) => entry,
                    None => return,
                }
            };
            self.shared.deferred_depth.sub(1);
            self.handle_payload(token, version, &payload);
        }
    }

    /// Decodes and dispatches one request payload for `token`.  `version`
    /// is the frame's wire version: it selects the payload envelope (v5
    /// carries a trace-id prefix, v4 is bare) and stamps every reply.
    fn handle_payload(&mut self, token: usize, version: u32, payload: &[u8]) {
        if let Some(conn) = self.conns.get_mut(&token) {
            // Every arriving frame counts against its tenant, decodable or
            // not — the scrape-side view of per-tenant demand.
            conn.metrics.requests.inc();
            conn.proto_version = version;
        }
        let (trace_id, request) = match decode_request_versioned(version, payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // The frame boundary held, so the session survives a bad
                // payload with a typed error.
                self.push_response(
                    token,
                    &Response::Error {
                        kind: ErrorKind::BadFrame,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        // The request's trace id scopes every span and flight event below —
        // dispatch runs to completion on this thread before the next frame.
        let prev_trace = alpha_telemetry::set_current_trace_id(trace_id);
        self.dispatch(token, trace_id, request);
        alpha_telemetry::set_current_trace_id(prev_trace);
    }

    /// Dispatches one decoded request.
    fn dispatch(&mut self, token: usize, trace_id: u64, request: Request) {
        let shared = self.shared.clone();
        match request {
            Request::Hello { client_id } => {
                let weight = shared.tenant_weight(client_id);
                shared
                    .tenants
                    .lock()
                    .expect("tenant table poisoned")
                    .entry(client_id)
                    .or_insert_with(|| TenantState {
                        weight,
                        submitted: 0,
                        rejected: 0,
                        completed: 0,
                        queued: 0,
                    });
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.tenant = client_id;
                    conn.metrics = ConnMetrics::for_tenant(&shared.registry, client_id);
                }
                self.push_response(token, &Response::Welcome { client_id, weight });
            }
            Request::TenantStats => {
                self.push_response(token, &Response::Tenants(shared.tenant_snapshot()));
            }
            Request::SubmitTune { matrix, device } => {
                let tenant = self.conns.get(&token).map(|c| c.tenant).unwrap_or(0);
                let response = {
                    let _span = alpha_telemetry::span!("net.admission", tenant = tenant);
                    submit_tune(&shared, tenant, trace_id, matrix, device)
                };
                self.push_response(token, &response);
            }
            Request::PollJob { job_id } => {
                let table = shared.job_shard(job_id).lock().expect("job table poisoned");
                let state = match table.get(&job_id) {
                    None => JobState::Unknown,
                    Some(Job::Queued { .. }) => JobState::Queued,
                    Some(Job::Running) => JobState::Running,
                    Some(Job::Done { summary, .. }) => JobState::Done(summary.clone()),
                    Some(Job::Failed { error }) => JobState::Failed {
                        error: error.clone(),
                    },
                };
                drop(table);
                self.push_response(token, &Response::Status { job_id, state });
            }
            Request::Spmv { job_id, x } => {
                let tenant = self.conns.get(&token).map(|c| c.tenant).unwrap_or(0);
                let version = self
                    .conns
                    .get(&token)
                    .map(|c| c.proto_version)
                    .unwrap_or(PROTOCOL_VERSION);
                let tuned = {
                    let table = shared.job_shard(job_id).lock().expect("job table poisoned");
                    match table.get(&job_id) {
                        None => Err(Response::Error {
                            kind: ErrorKind::UnknownJob,
                            message: format!(
                                "job {job_id} was never issued or has been garbage-collected"
                            ),
                        }),
                        Some(Job::Queued { .. }) | Some(Job::Running) => Err(Response::Error {
                            kind: ErrorKind::JobNotReady,
                            message: format!("job {job_id} is still tuning; poll until Done"),
                        }),
                        Some(Job::Failed { error }) => Err(Response::Error {
                            kind: ErrorKind::JobNotReady,
                            message: format!("job {job_id} failed: {error}"),
                        }),
                        Some(Job::Done { tuned, .. }) => Ok(tuned.clone()),
                    }
                };
                match tuned {
                    Err(response) => self.push_response(token, &response),
                    Ok(tuned) => {
                        // Offload: the kernel must not run on the loop.  The
                        // connection defers its later requests until the
                        // response frame comes back through `completions`.
                        shared.exec_inflight.fetch_add(1, Ordering::Relaxed);
                        match shared.exec_queue.try_push(ExecTask {
                            token,
                            tuned,
                            x,
                            received: Instant::now(),
                            version,
                            trace_id,
                            tenant,
                            job_id,
                        }) {
                            Ok(()) => {
                                shared.flightrec.record(
                                    FlightKind::Admitted,
                                    &tenant.to_string(),
                                    trace_id,
                                    job_id,
                                    0,
                                    "spmv",
                                );
                                if let Some(conn) = self.conns.get_mut(&token) {
                                    conn.pending_exec = true;
                                }
                            }
                            Err(_) => {
                                shared.exec_inflight.fetch_sub(1, Ordering::Relaxed);
                                shared.flightrec.record(
                                    FlightKind::Shed,
                                    &tenant.to_string(),
                                    trace_id,
                                    job_id,
                                    1,
                                    "spmv",
                                );
                                self.push_response(
                                    token,
                                    &Response::Busy {
                                        queue_capacity: shared.exec_queue.capacity() as u64,
                                        retry_after_ms: 1,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            Request::StoreStats => {
                self.push_response(token, &Response::Stats(shared.stats()));
            }
            Request::Metrics => {
                // Rendering walks a snapshot of the registry — bounded,
                // allocation-only work; nothing here can block the loop.
                self.push_response(
                    token,
                    &Response::MetricsText {
                        text: shared.registry.render_prometheus(),
                    },
                );
            }
            Request::Trace => {
                // Hand the server-side half of every recorded span to the
                // client, plus the server clock "now" so the fetch round
                // trip can estimate the clock offset between the domains.
                let spans: Vec<alpha_telemetry::OwnedSpan> = alpha_telemetry::drain_spans()
                    .iter()
                    .map(alpha_telemetry::OwnedSpan::from)
                    .collect();
                self.push_response(
                    token,
                    &Response::TraceSpans {
                        server_now_us: alpha_telemetry::now_us(),
                        spans,
                    },
                );
            }
            Request::Shutdown => {
                shared.initiate_shutdown();
                self.push_response(token, &Response::ShuttingDown);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.close_after_flush = true;
                }
            }
        }
    }

    /// Queues a response frame on a connection and re-arms its interest.
    fn push_response(&mut self, token: usize, response: &Response) {
        if let Some(conn) = self.conns.get_mut(&token) {
            // Shed and failed requests are tallied here, at the single
            // choke point every response passes through.
            match response {
                Response::Busy { .. } => conn.metrics.busy.inc(),
                Response::Error { .. } => conn.metrics.errors.inc(),
                _ => {}
            }
            // The reply-flush span inherits the dispatching request's trace
            // id from the thread-local set in `handle_payload`.
            let _span = alpha_telemetry::span!("net.reply", tenant = conn.tenant);
            conn.outbox
                .push_back(frame_bytes(conn.proto_version, response));
        }
    }

    /// Writes as much outbox as the socket accepts and reconciles the
    /// connection's reactor interest with its current state.
    fn pump(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while let Some(front) = conn.outbox.front() {
            match conn.stream.write(&front[conn.out_pos..]) {
                Ok(n) => {
                    conn.out_pos += n;
                    if conn.out_pos == front.len() {
                        conn.outbox.pop_front();
                        conn.out_pos = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.drained() {
            conn.dead = true;
        }
        let desired = conn.desired_interest();
        if desired != conn.registered
            && !conn.dead
            && self
                .reactor
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_ok()
        {
            conn.registered = desired;
        }
    }

    /// Tears down slow-loris connections: a partial frame older than the
    /// configured deadline closes the session (best-effort typed error
    /// first, matching the blocking server's `Truncated` behaviour).
    fn sweep_deadlines(&mut self) {
        let overdue: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.assembler.overdue() && !conn.close_after_flush)
            .map(|(token, _)| *token)
            .collect();
        for token in overdue {
            self.push_response(
                token,
                &Response::Error {
                    kind: ErrorKind::BadFrame,
                    message: "frame is truncated".to_string(),
                },
            );
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.close_after_flush = true;
            }
            self.pump(token);
        }
        // The HTTP lane gets the same treatment: a scrape that has not
        // finished within its deadline — request dribbled or response
        // undrained — is torn down.
        for conn in self.http_conns.values_mut() {
            if conn.opened.elapsed() > HTTP_DEADLINE {
                conn.dead = true;
            }
        }
    }

    /// Drops dead connections and releases their reactor registrations.
    fn reap(&mut self) {
        let dead: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| conn.dead)
            .map(|(token, _)| *token)
            .collect();
        for token in dead {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.reactor.deregister(conn.stream.as_raw_fd());
                self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
                self.shared.deferred_depth.sub(conn.deferred.len() as i64);
            }
        }
        let dead_http: Vec<usize> = self
            .http_conns
            .iter()
            .filter(|(_, conn)| conn.dead)
            .map(|(token, _)| *token)
            .collect();
        for token in dead_http {
            if let Some(conn) = self.http_conns.remove(&token) {
                let _ = self.reactor.deregister(conn.stream.as_raw_fd());
            }
        }
    }

    /// Returns true when the loop should exit: shutdown was requested and
    /// every outbox has drained (or the grace period expired).
    fn shutdown_tick(&mut self) -> bool {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let at = *self.shutdown_at.get_or_insert_with(Instant::now);
        let drained = self.conns.values().all(|c| c.outbox.is_empty())
            && self.shared.exec_inflight.load(Ordering::Relaxed) == 0;
        drained || at.elapsed() > SHUTDOWN_GRACE
    }
}

/// True once the buffered bytes contain a complete HTTP request head
/// (blank line), in either CRLF or bare-LF framing.
fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

/// `Content-Type` of the Prometheus text exposition; `version=0.0.4` is the
/// exposition format version scrapers negotiate on.
const PROMETHEUS_TEXT: &str = "text/plain; version=0.0.4";
/// `Content-Type` of the plain diagnostic bodies (404/405/400).
const TEXT_PLAIN: &str = "text/plain";

/// Where an HTTP request line lands on the debug endpoint.
enum HttpRoute {
    /// `GET /metrics` — the Prometheus text exposition.
    Metrics,
    /// `GET /debug/flightrec` — the flight recorder's JSON dump.
    FlightRec,
    /// A known path with any method but `GET` — `405`, `Allow: GET`.
    MethodNotAllowed,
    /// Everything else.
    NotFound,
}

/// Routes one request line.  Query strings are tolerated on known paths —
/// Prometheus sends none, humans with curl sometimes do.
fn http_route(buf: &[u8]) -> HttpRoute {
    let line = buf.split(|&b| b == b'\n').next().unwrap_or(&[]);
    let line = std::str::from_utf8(line)
        .unwrap_or("")
        .trim_end_matches('\r');
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or("");
    let known = path == "/metrics" || path == "/debug/flightrec";
    match (method, known) {
        ("GET", true) if path == "/metrics" => HttpRoute::Metrics,
        ("GET", true) => HttpRoute::FlightRec,
        (_, true) => HttpRoute::MethodNotAllowed,
        _ => HttpRoute::NotFound,
    }
}

/// Builds a minimal `HTTP/1.0` response with the headers a scraper needs.
/// A `405` additionally advertises `Allow: GET`.
fn http_response(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    let allow = if status.starts_with("405") {
        "Allow: GET\r\n"
    } else {
        ""
    };
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n{allow}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Admission + job-table insert for one tune submission, shared by the
/// event loop's dispatch.
fn submit_tune(
    shared: &Shared,
    tenant: u64,
    trace_id: u64,
    matrix: alpha_matrix::CsrMatrix,
    device: String,
) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            kind: ErrorKind::ShuttingDown,
            message: "daemon is shutting down; no new work accepted".to_string(),
        };
    }
    let Some(profile) = device_by_name(&device) else {
        return Response::Error {
            kind: ErrorKind::UnknownDevice,
            message: format!("unknown device {device:?} (try A100, RTX2080 or TestGPU)"),
        };
    };
    if let Err(busy) = shared.try_admit(tenant) {
        let retry_after_ms = match &busy {
            Response::Busy { retry_after_ms, .. } => *retry_after_ms,
            _ => 0,
        };
        shared.flightrec.record(
            FlightKind::Shed,
            &tenant.to_string(),
            trace_id,
            0,
            retry_after_ms,
            "tune",
        );
        return busy;
    }
    let request = TuneRequest::new(matrix, profile);
    let job_id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    shared
        .job_shard(job_id)
        .lock()
        .expect("job table poisoned")
        .insert(
            job_id,
            Job::Queued {
                request: Box::new(request),
                enqueued: Instant::now(),
                tenant,
                trace_id,
            },
        );
    match shared.queue.try_push(tenant, job_id) {
        Ok(()) => {
            shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
            shared.flightrec.record(
                FlightKind::Admitted,
                &tenant.to_string(),
                trace_id,
                job_id,
                0,
                "tune",
            );
            Response::Submitted { job_id }
        }
        Err(push_error) => {
            // Admission failed at the global bound: nothing must remain of
            // the job.
            shared
                .job_shard(job_id)
                .lock()
                .expect("job table poisoned")
                .remove(&job_id);
            match push_error {
                PushError::Full(_) => {
                    shared.unadmit(tenant, true);
                    shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                    let retry_after_ms = shared.retry_after_ms();
                    shared.flightrec.record(
                        FlightKind::Shed,
                        &tenant.to_string(),
                        trace_id,
                        job_id,
                        retry_after_ms,
                        "tune",
                    );
                    Response::Busy {
                        queue_capacity: shared.queue.capacity() as u64,
                        retry_after_ms,
                    }
                }
                PushError::Closed(_) => {
                    shared.unadmit(tenant, false);
                    Response::Error {
                        kind: ErrorKind::ShuttingDown,
                        message: "daemon is shutting down; no new work accepted".to_string(),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_names_resolve_case_insensitively() {
        assert_eq!(device_by_name("a100").unwrap().name, "A100");
        assert_eq!(device_by_name("RTX2080").unwrap().name, "RTX2080");
        assert_eq!(device_by_name("testgpu").unwrap().name, "TestGPU");
        assert!(device_by_name("H100").is_none());
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert!(config.queue_capacity > 0);
        assert!(config.max_terminal_jobs > 0);
        assert!(config.frame_deadline >= Duration::from_secs(1));
        assert!(config.tenant_weights.is_empty());
        assert!(config.metrics_addr.is_none());
        assert!(config.slow_request_us > 0);
        assert!(config.flightrec_dump.is_none());
    }

    #[test]
    fn http_request_lines_are_routed_strictly() {
        assert!(matches!(
            http_route(b"GET /metrics HTTP/1.0\r\n\r\n"),
            HttpRoute::Metrics
        ));
        assert!(matches!(
            http_route(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            HttpRoute::Metrics
        ));
        assert!(matches!(
            http_route(b"GET /metrics?debug=1 HTTP/1.0\r\n\r\n"),
            HttpRoute::Metrics
        ));
        assert!(matches!(
            http_route(b"GET /debug/flightrec HTTP/1.0\r\n\r\n"),
            HttpRoute::FlightRec
        ));
        assert!(matches!(
            http_route(b"GET /metricsx HTTP/1.0\r\n\r\n"),
            HttpRoute::NotFound
        ));
        assert!(matches!(
            http_route(b"GET / HTTP/1.0\r\n\r\n"),
            HttpRoute::NotFound
        ));
        assert!(matches!(
            http_route(b"POST /metrics HTTP/1.0\r\n\r\n"),
            HttpRoute::MethodNotAllowed
        ));
        assert!(matches!(
            http_route(b"DELETE /debug/flightrec HTTP/1.0\r\n\r\n"),
            HttpRoute::MethodNotAllowed
        ));
        assert!(matches!(
            http_route(b"\xff\xfe not utf8\r\n\r\n"),
            HttpRoute::NotFound
        ));

        assert!(head_complete(b"GET /metrics HTTP/1.0\r\n\r\n"));
        assert!(head_complete(b"GET /metrics\n\n"));
        assert!(!head_complete(b"GET /metrics HTTP/1.0\r\n"));
    }

    #[test]
    fn http_responses_carry_exact_content_length() {
        let bytes = http_response("200 OK", PROMETHEUS_TEXT, "abc");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(!text.contains("Allow:"));
        assert!(text.ends_with("\r\n\r\nabc"));
    }

    #[test]
    fn method_not_allowed_advertises_the_allowed_method() {
        let bytes = http_response("405 Method Not Allowed", TEXT_PLAIN, "only GET\n");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.0 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: GET\r\n"));
        assert!(text.contains("Content-Type: text/plain\r\n"));
    }
}
