//! The `alpha-net` wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! +--------+-----------+------------------+---------------------+
//! | "ANET" | version   | payload length   | payload bytes       |
//! | 4 B    | u32 LE    | u64 LE           | (length bytes)      |
//! +--------+-----------+------------------+---------------------+
//! ```
//!
//! and the payload is one tagged message encoded with the exact
//! [`ByteWriter`]/[`ByteReader`] codec discipline the durable `ACDS` cache
//! files use (`alpha_search::persist`): little-endian integers, `f64` bit
//! patterns, length-prefixed UTF-8 strings, and bounds-checked counts.  The
//! invariants that make the protocol safe to expose to a socket:
//!
//! * **Nothing panics on adversarial input.**  Bad magic, an unsupported
//!   version, a truncated frame, an oversized length ([`MAX_FRAME_LEN`]) and
//!   undecodable payload bytes each map to a typed [`ProtoError`]; the
//!   server answers with a typed [`Response::Error`] where the stream is
//!   still framed, and closes the connection where framing is lost.
//! * **Counts are bounded before allocation.**  A corrupt element count can
//!   never drive an allocation larger than the (already length-capped)
//!   frame that carried it.
//! * **Versioning is explicit.**  A frame from outside the supported
//!   version window ([`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`]) is
//!   rejected with [`ProtoError::VersionMismatch`] — never misread.  Within
//!   the window the frame's own version selects its payload layout: v5
//!   request payloads carry a leading 8-byte `trace_id`
//!   ([`encode_request_traced`]/[`decode_request_versioned`]); v4 payloads
//!   are the bare tagged message and decode with `trace_id = 0`.

use alpha_matrix::{CsrMatrix, Scalar};
use alpha_search::persist::PersistError;
use alpha_search::{ByteReader, ByteWriter};
use std::io::{Read, Write};

/// Frame magic: every `alpha-net` frame starts with these four bytes.
pub const NET_MAGIC: [u8; 4] = *b"ANET";

/// Wire-protocol version this build speaks.  Bump on any frame- or
/// payload-layout change; peers outside the
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] window are rejected
/// with [`ProtoError::VersionMismatch`] instead of being misread.
/// (v2: [`JobSummary`] gained `queue_wait_secs`.  v3: multi-tenant QoS —
/// [`Request::Hello`]/[`Response::Welcome`] carry a `ClientId`,
/// [`Response::Busy`] reports `retry_after_ms`, [`Request::TenantStats`]
/// returns per-tenant fairness accounting, and [`ServerStats`] gained the
/// `jobs_resident` and `open_connections` gauges.  v4: observability —
/// [`Request::Metrics`] asks for the daemon's full telemetry registry and
/// is answered with [`Response::MetricsText`] carrying the Prometheus text
/// exposition.  v5: distributed tracing — request payloads lead with an
/// 8-byte `trace_id`, and [`Request::Trace`]/[`Response::TraceSpans`] fetch
/// the daemon's buffered spans for cross-process stitching.)
pub const PROTOCOL_VERSION: u32 = 5;

/// Oldest wire-protocol version this build still accepts.  v4 clients have
/// no trace ids; the server decodes their requests with `trace_id = 0` and
/// stamps its replies with the client's own version, so they interoperate
/// unchanged.
pub const MIN_PROTOCOL_VERSION: u32 = 4;

/// Upper bound on one frame's payload length.  Large enough for a
/// multi-million-nonzero matrix submission, small enough that a corrupt or
/// hostile length field cannot drive an unbounded allocation.
pub const MAX_FRAME_LEN: u64 = 256 * 1024 * 1024;

/// Upper bound on a wire matrix's claimed row or column count.  Tuning a
/// submission allocates dense vectors of these sizes, so the dimension a
/// frame *claims* (as opposed to the data it carries, which
/// [`MAX_FRAME_LEN`] bounds) must itself be capped or a 16-byte mutant
/// could drive a terabyte allocation.
pub const MAX_MATRIX_DIM: u64 = 1 << 28;

/// Why encoding, decoding or transporting a frame failed.
#[derive(Debug)]
pub enum ProtoError {
    /// An underlying socket / I/O error.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames (no partial
    /// frame was lost).  The server's connection loop treats this as the
    /// normal end of a session, not a fault.
    Closed,
    /// A read timeout expired before the first byte of a frame arrived
    /// (only possible when the caller set one on the stream).  The
    /// connection is idle, not broken: the daemon uses this to poll its
    /// shutdown flag between frames.
    Idle,
    /// The frame does not start with [`NET_MAGIC`] — the peer is not
    /// speaking this protocol.
    BadMagic,
    /// The frame was produced by a different protocol version.
    VersionMismatch {
        /// Version found in the frame header.
        found: u32,
        /// Version this build speaks.
        expected: u32,
    },
    /// The frame header announces a payload larger than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Announced payload length.
        len: u64,
        /// The bound it exceeded.
        max: u64,
    },
    /// The stream ended in the middle of a frame, or a payload ended in the
    /// middle of a field.
    Truncated,
    /// The payload decoded to an impossible value (unknown message tag,
    /// invalid UTF-8, a matrix that fails CSR validation, …).
    Corrupt(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "wire I/O error: {e}"),
            ProtoError::Closed => write!(f, "connection closed by peer"),
            ProtoError::Idle => write!(f, "connection idle (read timeout, no frame started)"),
            ProtoError::BadMagic => write!(f, "not an alpha-net frame (bad magic)"),
            ProtoError::VersionMismatch { found, expected } => write!(
                f,
                "peer speaks wire-protocol version {found}, this build speaks \
                 {MIN_PROTOCOL_VERSION}..={expected}"
            ),
            ProtoError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::Truncated => write!(f, "frame is truncated"),
            ProtoError::Corrupt(msg) => write!(f, "frame payload is corrupt: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<PersistError> for ProtoError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(e) => ProtoError::Io(e),
            PersistError::Truncated => ProtoError::Truncated,
            PersistError::Corrupt(msg) => ProtoError::Corrupt(msg),
            // The payload codec itself never produces these two; map them
            // defensively in case a future helper does.
            PersistError::BadMagic => ProtoError::BadMagic,
            PersistError::VersionMismatch { .. } => {
                ProtoError::Corrupt("payload embeds a foreign cache-format version".to_string())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

/// Writes one frame (header + payload) to `w`, stamped with
/// [`PROTOCOL_VERSION`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ProtoError> {
    write_frame_versioned(w, PROTOCOL_VERSION, payload)
}

/// Writes one frame stamped with an explicit protocol version.  The server
/// uses this to answer a v4 client with v4-stamped frames — a strict v4
/// `read_frame` would reject a v5 stamp even though the response payload
/// layout is identical.
pub fn write_frame_versioned<W: Write>(
    w: &mut W,
    version: u32,
    payload: &[u8],
) -> Result<(), ProtoError> {
    if payload.len() as u64 > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge {
            len: payload.len() as u64,
            max: MAX_FRAME_LEN,
        });
    }
    let mut header = [0u8; 16];
    header[..4].copy_from_slice(&NET_MAGIC);
    header[4..8].copy_from_slice(&version.to_le_bytes());
    header[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Wall-clock budget for receiving one complete frame, measured from its
/// *first byte*.  Any style of slow-loris — half a header then silence, or
/// a byte dribbled every 90 ms against a promised-huge payload — trips this
/// bound and tears the frame with [`ProtoError::Truncated`], so a hostile
/// client can pin a connection thread (and stall `NetServer::join`) for at
/// most this long.  The clock is only *observed* when a `read` call
/// returns, so it needs the stream's read timeout (the daemon polls at
/// 100 ms) to be enforceable; a blocking reader without a timeout — the
/// trusting client side — never spuriously trips it while parked in a
/// single `read`.
pub const MAX_FRAME_SECS: u64 = 60;

/// Reads one frame from `r`, validating magic, version and the length cap
/// before the payload is buffered.  A peer that closes the connection
/// *between* frames yields [`ProtoError::Closed`]; one that closes
/// mid-frame yields [`ProtoError::Truncated`].
///
/// Two hostile-input properties the reader maintains:
///
/// * **Allocation follows receipt.**  The payload buffer grows with the
///   bytes that actually arrive — a header *claiming* [`MAX_FRAME_LEN`]
///   costs nothing until the peer really sends that much.
/// * **Time is bounded.**  A frame that has started must complete within
///   [`MAX_FRAME_SECS`] (see there for the timeout caveat).
///
/// When the stream has a read timeout, a timeout that fires before the
/// first byte of a frame yields [`ProtoError::Idle`] (poll again later).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, ProtoError> {
    use std::io::ErrorKind::{Interrupted, TimedOut, WouldBlock};
    let budget = std::time::Duration::from_secs(MAX_FRAME_SECS);
    // The deadline clock starts at the frame's first byte, not at call
    // time: this function parks in `read` waiting for frames to *begin*.
    let mut started: Option<std::time::Instant> = None;
    let overdue = |started: &Option<std::time::Instant>| {
        started.map(|at| at.elapsed() > budget).unwrap_or(false)
    };

    let mut header = [0u8; 16];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(ProtoError::Closed),
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => {
                filled += n;
                started.get_or_insert_with(std::time::Instant::now);
            }
            Err(e) if e.kind() == Interrupted => {}
            Err(e) if e.kind() == WouldBlock || e.kind() == TimedOut => {
                if filled == 0 {
                    return Err(ProtoError::Idle);
                }
            }
            Err(e) => return Err(e.into()),
        }
        if overdue(&started) {
            return Err(ProtoError::Truncated);
        }
    }
    if header[..4] != NET_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let found = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&found) {
        return Err(ProtoError::VersionMismatch {
            found,
            expected: PROTOCOL_VERSION,
        });
    }
    let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(ProtoError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }

    // Chunked receive: the buffer holds only what has arrived, so the
    // attacker-controlled length field cannot pre-allocate 256 MiB.
    let len = len as usize;
    let mut payload: Vec<u8> = Vec::with_capacity(len.min(1 << 20));
    let mut chunk = [0u8; 64 * 1024];
    while payload.len() < len {
        let want = chunk.len().min(len - payload.len());
        match r.read(&mut chunk[..want]) {
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => {
                payload.extend_from_slice(&chunk[..n]);
                started.get_or_insert_with(std::time::Instant::now);
            }
            Err(e) if e.kind() == Interrupted => {}
            // Mid-payload timeouts wait for the slow peer (the header
            // promised these bytes) — within the frame's time budget.
            Err(e) if e.kind() == WouldBlock || e.kind() == TimedOut => {}
            Err(e) => return Err(e.into()),
        }
        if overdue(&started) {
            return Err(ProtoError::Truncated);
        }
    }
    Ok(payload)
}

/// Incremental frame reassembly for nonblocking sockets: the event-loop
/// counterpart of [`read_frame`], with the same hostile-input guarantees.
///
/// The reactor hands the server whatever bytes a socket had ready — half a
/// header, three frames at once, one byte of a 100 MiB payload — and
/// [`FrameAssembler::push`] folds them into complete frame payloads:
///
/// * **Frame-before-trust.**  The header is validated (magic, version,
///   length cap) the moment its 16th byte arrives, before any payload byte
///   is buffered.  A bad header is a framing-lost error: the caller cannot
///   resynchronise mid-stream and must close the connection.
/// * **Allocation follows receipt.**  The payload buffer reserves at most
///   1 MiB up front regardless of the announced length; it grows with the
///   bytes that actually arrive.
/// * **Slow-loris deadline.**  A frame measures its age from its first
///   byte; a partial frame older than the budget makes
///   [`FrameAssembler::overdue`] true, and the server's sweep closes the
///   connection.  Complete frames reset the clock.
#[derive(Debug)]
pub struct FrameAssembler {
    budget: std::time::Duration,
    /// First byte of the in-progress frame (None between frames).
    started: Option<std::time::Instant>,
    header: [u8; 16],
    header_filled: usize,
    /// Protocol version of the in-progress frame, known once the header
    /// completes and validates.
    version: u32,
    /// Announced payload length, known once the header completes.
    payload_len: usize,
    payload: Vec<u8>,
}

impl FrameAssembler {
    /// An assembler whose partial frames must complete within `budget`
    /// (servers pass their configured deadline; [`MAX_FRAME_SECS`] is the
    /// default).
    pub fn with_deadline(budget: std::time::Duration) -> Self {
        FrameAssembler {
            budget,
            started: None,
            header: [0u8; 16],
            header_filled: 0,
            version: 0,
            payload_len: 0,
            payload: Vec::new(),
        }
    }

    /// Folds freshly received bytes in, appending every completed frame to
    /// `out` as a `(version, payload)` pair — the version tells the caller
    /// which payload layout the peer used and which stamp its replies need.
    /// An error means framing is lost (bad magic, unsupported version,
    /// oversized length): close the connection.
    pub fn push(
        &mut self,
        mut bytes: &[u8],
        out: &mut Vec<(u32, Vec<u8>)>,
    ) -> Result<(), ProtoError> {
        while !bytes.is_empty() {
            if self.started.is_none() {
                self.started = Some(std::time::Instant::now());
            }
            if self.header_filled < self.header.len() {
                let take = bytes.len().min(self.header.len() - self.header_filled);
                self.header[self.header_filled..self.header_filled + take]
                    .copy_from_slice(&bytes[..take]);
                self.header_filled += take;
                bytes = &bytes[take..];
                if self.header_filled < self.header.len() {
                    continue; // header still partial; wait for more bytes
                }
                // Frame-before-trust: the header is judged in full before
                // one payload byte is accepted.
                if self.header[..4] != NET_MAGIC {
                    return Err(ProtoError::BadMagic);
                }
                let found = u32::from_le_bytes(self.header[4..8].try_into().expect("4 bytes"));
                if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&found) {
                    return Err(ProtoError::VersionMismatch {
                        found,
                        expected: PROTOCOL_VERSION,
                    });
                }
                let len = u64::from_le_bytes(self.header[8..16].try_into().expect("8 bytes"));
                if len > MAX_FRAME_LEN {
                    return Err(ProtoError::FrameTooLarge {
                        len,
                        max: MAX_FRAME_LEN,
                    });
                }
                let len = len as usize;
                self.version = found;
                self.payload_len = len;
                self.payload = Vec::with_capacity(len.min(1 << 20));
            }
            let take = bytes.len().min(self.payload_len - self.payload.len());
            self.payload.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.payload.len() == self.payload_len {
                out.push((self.version, std::mem::take(&mut self.payload)));
                self.header_filled = 0;
                self.payload_len = 0;
                self.started = None;
            }
        }
        Ok(())
    }

    /// True while a frame has started but not finished.
    pub fn mid_frame(&self) -> bool {
        self.started.is_some()
    }

    /// True when a partial frame has been pending longer than the budget —
    /// the slow-loris trigger.  The caller should close the connection.
    pub fn overdue(&self) -> bool {
        self.started
            .map(|at| at.elapsed() > self.budget)
            .unwrap_or(false)
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a matrix for tuning on the named device.  Answered with
    /// [`Response::Submitted`] (a job id), [`Response::Busy`] (queue full —
    /// back off and retry) or a typed [`Response::Error`].
    SubmitTune {
        /// The matrix to tune.
        matrix: CsrMatrix,
        /// Device-profile name (see [`crate::device_by_name`]).
        device: String,
    },
    /// Ask for a job's current state.
    PollJob {
        /// Id returned by [`Response::Submitted`].
        job_id: u64,
    },
    /// Execute `y = A·x` with a finished job's tuned kernel.
    Spmv {
        /// Id of a job in the `Done` state.
        job_id: u64,
        /// The input vector (length = the job's matrix column count).
        x: Vec<Scalar>,
    },
    /// Ask for the daemon's store and job-table counters.
    StoreStats,
    /// Ask the daemon to stop accepting work and exit cleanly.
    Shutdown,
    /// Identify this connection as belonging to a tenant.  Optional — an
    /// anonymous connection is tenant 0 — but weighted admission and
    /// fairness accounting key on it, so multi-tenant clients should send
    /// it first.  Answered with [`Response::Welcome`].
    Hello {
        /// Caller-chosen stable tenant identity.
        client_id: u64,
    },
    /// Ask for the per-tenant fairness accounting.  Answered with
    /// [`Response::Tenants`].
    TenantStats,
    /// Ask for the daemon's full telemetry registry — every counter, gauge
    /// and histogram the process has recorded, not just the curated
    /// [`ServerStats`] subset.  Answered with [`Response::MetricsText`]
    /// carrying the Prometheus text exposition (the same bytes the
    /// `--metrics-addr` HTTP endpoint serves).
    Metrics,
    /// Drain the daemon's buffered trace spans (v5+).  Answered with
    /// [`Response::TraceSpans`]; the caller stitches them against its own
    /// spans with `alpha_telemetry::stitch`, using the `server_now_us`
    /// stamp to align the two clock domains.  A daemon with tracing
    /// disabled answers with an empty span list.
    Trace,
}

/// A finished job's result, as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// Throughput of the winning design under the service's evaluator.
    pub gflops: f64,
    /// The winning operator graph, formatted for display.
    pub operator_graph: String,
    /// Fresh evaluations the search cost — 0 when the daemon's warm store
    /// answered the whole search.
    pub fresh_evaluations: u64,
    /// True when the search was seeded from stored winners of structurally
    /// similar matrices.
    pub warm_started: bool,
    /// Server-side wall-clock seconds spent tuning.
    pub wall_secs: f64,
    /// Seconds the job sat in the daemon's admission queue before a tuning
    /// worker picked it up.  Reported separately from `wall_secs` so load
    /// tests can attribute latency to queueing vs execution.
    pub queue_wait_secs: f64,
    /// The monomorphized-library shape key of the resident native kernel
    /// that will serve [`Request::Spmv`] for this job.
    pub kernel_shape: String,
    /// True when every partition of the resident kernel executes through a
    /// specialized (branch-free) loop rather than the interpreted fallback.
    pub specialized: bool,
}

/// Where one job is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Admitted, waiting for a tuning worker.
    Queued,
    /// A tuning worker is searching right now.
    Running,
    /// Tuning finished; the kernel is resident and serves [`Request::Spmv`].
    Done(JobSummary),
    /// Tuning failed.
    Failed {
        /// Why the search failed.
        error: String,
    },
    /// The id was never issued, or the job's terminal record was
    /// garbage-collected.
    Unknown,
}

/// The daemon's counters: the backing store's memory tier plus the job
/// table and admission queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Store-tier `cache_for` calls answered by a resident cache.
    pub store_memory_hits: u64,
    /// Store-tier cache files loaded from disk.
    pub store_disk_loads: u64,
    /// Store-tier contexts created cold (never tuned before).
    pub store_cold_starts: u64,
    /// Store-tier caches evicted (written back) to respect capacity.
    pub store_evictions: u64,
    /// Jobs admitted to the queue over the daemon's lifetime.
    pub jobs_submitted: u64,
    /// Jobs rejected with [`Response::Busy`] backpressure.
    pub jobs_rejected: u64,
    /// Jobs that finished successfully.
    pub jobs_completed: u64,
    /// Jobs that finished in failure.
    pub jobs_failed: u64,
    /// Terminal job records garbage-collected from the job table.
    pub jobs_gced: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: u64,
    /// The admission-control bound of the queue.
    pub queue_capacity: u64,
    /// Job records currently resident in the job table (all states,
    /// terminal included).  A leak detector: after every submitted job
    /// reaches a terminal state and GC runs, this converges to the retained
    /// terminal window, never grows without bound.
    pub jobs_resident: u64,
    /// Client connections currently open on the event loop.
    pub open_connections: u64,
}

/// One tenant's admission/fairness accounting, as reported by
/// [`Response::Tenants`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's [`Request::Hello`] identity (0 = anonymous).
    pub client_id: u64,
    /// Admission weight; a tenant's queue credit scales with its weight
    /// relative to the other *active* tenants.
    pub weight: u64,
    /// Tune jobs this tenant submitted and the daemon admitted.
    pub submitted: u64,
    /// Tune jobs shed back to this tenant with [`Response::Busy`].
    pub rejected: u64,
    /// This tenant's jobs that reached `Done`.
    pub completed: u64,
    /// This tenant's jobs waiting in the queue right now.
    pub queued: u64,
}

/// Machine-readable classification of a [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorKind {
    /// The request frame decoded to garbage (the framing itself was intact,
    /// so the connection stays usable).
    BadFrame = 0,
    /// The submitted device name matches no known profile.
    UnknownDevice = 1,
    /// The job id was never issued or has been garbage-collected.
    UnknownJob = 2,
    /// The job exists but is not in the `Done` state (still queued/running,
    /// or failed).
    JobNotReady = 3,
    /// The submitted matrix failed CSR validation.
    InvalidMatrix = 4,
    /// The SpMV input vector does not fit the job's matrix.
    InvalidInput = 5,
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown = 6,
    /// An internal server error.
    Internal = 7,
}

impl ErrorKind {
    fn from_tag(tag: u8) -> Result<Self, ProtoError> {
        Ok(match tag {
            0 => ErrorKind::BadFrame,
            1 => ErrorKind::UnknownDevice,
            2 => ErrorKind::UnknownJob,
            3 => ErrorKind::JobNotReady,
            4 => ErrorKind::InvalidMatrix,
            5 => ErrorKind::InvalidInput,
            6 => ErrorKind::ShuttingDown,
            7 => ErrorKind::Internal,
            other => {
                return Err(ProtoError::Corrupt(format!("unknown error kind {other}")));
            }
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            ErrorKind::BadFrame => "bad-frame",
            ErrorKind::UnknownDevice => "unknown-device",
            ErrorKind::UnknownJob => "unknown-job",
            ErrorKind::JobNotReady => "job-not-ready",
            ErrorKind::InvalidMatrix => "invalid-matrix",
            ErrorKind::InvalidInput => "invalid-input",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        };
        f.write_str(label)
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The tune request was admitted under this job id.
    Submitted {
        /// Poll this id with [`Request::PollJob`].
        job_id: u64,
    },
    /// Admission control rejected the request: the job queue is full, or
    /// the tenant exhausted its fair-share credit.  Back off and retry —
    /// nothing was enqueued.
    Busy {
        /// The queue bound that was hit, so clients can size their backoff.
        queue_capacity: u64,
        /// The daemon's estimate of when retrying is worthwhile, from its
        /// current queue depth and measured per-job service time.  Zero
        /// means "immediately" (e.g. a credit rejection that frees up as
        /// soon as a sibling job drains).
        retry_after_ms: u64,
    },
    /// Answer to [`Request::PollJob`].
    Status {
        /// The polled job id.
        job_id: u64,
        /// Its current state.
        state: JobState,
    },
    /// Answer to [`Request::Spmv`]: the product vector.
    SpmvResult {
        /// `y = A·x`, length = the job's matrix row count.
        y: Vec<Scalar>,
    },
    /// Answer to [`Request::StoreStats`].
    Stats(ServerStats),
    /// Answer to [`Request::Shutdown`]: the daemon is stopping.
    ShuttingDown,
    /// Answer to [`Request::Hello`]: the tenant identity is registered.
    Welcome {
        /// Echo of the registered tenant id.
        client_id: u64,
        /// The admission weight the daemon assigned this tenant.
        weight: u64,
    },
    /// Answer to [`Request::TenantStats`]: every tenant the daemon has
    /// seen, sorted by `client_id`.
    Tenants(Vec<TenantStats>),
    /// Answer to [`Request::Metrics`]: the daemon's telemetry registry
    /// rendered in the Prometheus text exposition format.
    MetricsText {
        /// `# TYPE`-annotated metric families, one sample per line.
        text: String,
    },
    /// Answer to [`Request::Trace`]: the daemon's span ring, drained.
    TraceSpans {
        /// The server's trace clock (`alpha_telemetry::now_us`) read while
        /// answering — the anchor for NTP-style clock-domain stitching.
        server_now_us: u64,
        /// The drained spans, oldest first, in the server's clock domain.
        spans: Vec<alpha_telemetry::OwnedSpan>,
    },
    /// A typed error.
    Error {
        /// Machine-readable classification.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

fn write_matrix(w: &mut ByteWriter, matrix: &CsrMatrix) {
    w.u64(matrix.rows() as u64);
    w.u64(matrix.cols() as u64);
    w.u64(matrix.row_offsets().len() as u64);
    for &offset in matrix.row_offsets() {
        w.u32(offset);
    }
    w.u64(matrix.col_indices().len() as u64);
    for &col in matrix.col_indices() {
        w.u32(col);
    }
    w.u64(matrix.values().len() as u64);
    for &value in matrix.values() {
        w.f32(value);
    }
}

fn read_matrix(r: &mut ByteReader<'_>) -> Result<CsrMatrix, ProtoError> {
    let rows = usize::try_from(r.u64()?)
        .map_err(|_| ProtoError::Corrupt("matrix row count overflows usize".into()))?;
    let cols = usize::try_from(r.u64()?)
        .map_err(|_| ProtoError::Corrupt("matrix column count overflows usize".into()))?;
    // Allocation follows receipt: tuning allocates dense `rows`- and
    // `cols`-sized vectors, so a claimed dimension beyond the wire bound is
    // rejected here — before any downstream layer trusts it with memory.
    // (`rows` is additionally pinned by CSR validation to the row-offset
    // count, which the frame cap already bounds; `cols` has no such tie.)
    for (what, dim) in [("row", rows), ("column", cols)] {
        if dim as u64 > MAX_MATRIX_DIM {
            return Err(ProtoError::Corrupt(format!(
                "matrix {what} count {dim} exceeds the wire bound of {MAX_MATRIX_DIM}"
            )));
        }
    }
    let offsets_len = r.count_of("row-offset", 4)?;
    let mut row_offsets = Vec::with_capacity(offsets_len);
    for _ in 0..offsets_len {
        row_offsets.push(r.u32()?);
    }
    let cols_len = r.count_of("column-index", 4)?;
    let mut col_indices = Vec::with_capacity(cols_len);
    for _ in 0..cols_len {
        col_indices.push(r.u32()?);
    }
    let values_len = r.count_of("value", 4)?;
    let mut values = Vec::with_capacity(values_len);
    for _ in 0..values_len {
        values.push(r.f32()?);
    }
    CsrMatrix::from_raw(rows, cols, row_offsets, col_indices, values)
        .map_err(|e| ProtoError::Corrupt(format!("matrix fails CSR validation: {e}")))
}

fn write_vec(w: &mut ByteWriter, xs: &[Scalar]) {
    w.u64(xs.len() as u64);
    for &x in xs {
        w.f32(x);
    }
}

fn read_vec(r: &mut ByteReader<'_>) -> Result<Vec<Scalar>, ProtoError> {
    let len = r.count_of("vector element", 4)?;
    let mut xs = Vec::with_capacity(len);
    for _ in 0..len {
        xs.push(r.f32()?);
    }
    Ok(xs)
}

fn write_summary(w: &mut ByteWriter, summary: &JobSummary) {
    w.f64(summary.gflops);
    w.str(&summary.operator_graph);
    w.u64(summary.fresh_evaluations);
    w.u8(summary.warm_started as u8);
    w.f64(summary.wall_secs);
    w.f64(summary.queue_wait_secs);
    w.str(&summary.kernel_shape);
    w.u8(summary.specialized as u8);
}

fn read_summary(r: &mut ByteReader<'_>) -> Result<JobSummary, ProtoError> {
    Ok(JobSummary {
        gflops: r.f64()?,
        operator_graph: r.str()?,
        fresh_evaluations: r.u64()?,
        warm_started: match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(ProtoError::Corrupt(format!(
                    "warm-started flag must be 0/1, found {other}"
                )));
            }
        },
        wall_secs: r.f64()?,
        queue_wait_secs: r.f64()?,
        kernel_shape: r.str()?,
        specialized: match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(ProtoError::Corrupt(format!(
                    "specialized flag must be 0/1, found {other}"
                )));
            }
        },
    })
}

fn write_stats(w: &mut ByteWriter, stats: &ServerStats) {
    for v in [
        stats.store_memory_hits,
        stats.store_disk_loads,
        stats.store_cold_starts,
        stats.store_evictions,
        stats.jobs_submitted,
        stats.jobs_rejected,
        stats.jobs_completed,
        stats.jobs_failed,
        stats.jobs_gced,
        stats.queue_depth,
        stats.queue_capacity,
        stats.jobs_resident,
        stats.open_connections,
    ] {
        w.u64(v);
    }
}

fn read_stats(r: &mut ByteReader<'_>) -> Result<ServerStats, ProtoError> {
    Ok(ServerStats {
        store_memory_hits: r.u64()?,
        store_disk_loads: r.u64()?,
        store_cold_starts: r.u64()?,
        store_evictions: r.u64()?,
        jobs_submitted: r.u64()?,
        jobs_rejected: r.u64()?,
        jobs_completed: r.u64()?,
        jobs_failed: r.u64()?,
        jobs_gced: r.u64()?,
        queue_depth: r.u64()?,
        queue_capacity: r.u64()?,
        jobs_resident: r.u64()?,
        open_connections: r.u64()?,
    })
}

fn write_tenant(w: &mut ByteWriter, tenant: &TenantStats) {
    for v in [
        tenant.client_id,
        tenant.weight,
        tenant.submitted,
        tenant.rejected,
        tenant.completed,
        tenant.queued,
    ] {
        w.u64(v);
    }
}

fn read_tenant(r: &mut ByteReader<'_>) -> Result<TenantStats, ProtoError> {
    Ok(TenantStats {
        client_id: r.u64()?,
        weight: r.u64()?,
        submitted: r.u64()?,
        rejected: r.u64()?,
        completed: r.u64()?,
        queued: r.u64()?,
    })
}

fn write_span(w: &mut ByteWriter, span: &alpha_telemetry::OwnedSpan) {
    w.str(&span.name);
    w.u64(span.ts_us);
    w.u64(span.dur_us);
    w.u64(span.tid);
    w.u32(span.depth);
    match &span.arg {
        Some((key, value)) => {
            w.u8(1);
            w.str(key);
            w.u64(*value);
        }
        None => w.u8(0),
    }
    w.u64(span.trace_id);
}

fn read_span(r: &mut ByteReader<'_>) -> Result<alpha_telemetry::OwnedSpan, ProtoError> {
    Ok(alpha_telemetry::OwnedSpan {
        name: r.str()?,
        ts_us: r.u64()?,
        dur_us: r.u64()?,
        tid: r.u64()?,
        depth: r.u32()?,
        arg: match r.u8()? {
            0 => None,
            1 => Some((r.str()?, r.u64()?)),
            other => {
                return Err(ProtoError::Corrupt(format!(
                    "span arg flag must be 0/1, found {other}"
                )));
            }
        },
        trace_id: r.u64()?,
    })
}

/// Encodes a request into a frame payload.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut w = ByteWriter::default();
    match request {
        Request::SubmitTune { matrix, device } => {
            w.u8(0);
            write_matrix(&mut w, matrix);
            w.str(device);
        }
        Request::PollJob { job_id } => {
            w.u8(1);
            w.u64(*job_id);
        }
        Request::Spmv { job_id, x } => {
            w.u8(2);
            w.u64(*job_id);
            write_vec(&mut w, x);
        }
        Request::StoreStats => w.u8(3),
        Request::Shutdown => w.u8(4),
        Request::Hello { client_id } => {
            w.u8(5);
            w.u64(*client_id);
        }
        Request::TenantStats => w.u8(6),
        Request::Metrics => w.u8(7),
        Request::Trace => w.u8(8),
    }
    w.into_bytes()
}

/// Encodes a request as a v5 ([`PROTOCOL_VERSION`]) frame payload: the
/// request's `trace_id` (8 bytes LE, `0` = untraced) followed by the tagged
/// message.
pub fn encode_request_traced(trace_id: u64, request: &Request) -> Vec<u8> {
    let body = encode_request(request);
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&trace_id.to_le_bytes());
    payload.extend_from_slice(&body);
    payload
}

/// Decodes a request frame payload according to the frame's protocol
/// version: v4 payloads are the bare message (`trace_id = 0`), v5 payloads
/// lead with the 8-byte trace id.
pub fn decode_request_versioned(
    version: u32,
    payload: &[u8],
) -> Result<(u64, Request), ProtoError> {
    if version <= 4 {
        return Ok((0, decode_request(payload)?));
    }
    if payload.len() < 8 {
        return Err(ProtoError::Truncated);
    }
    let trace_id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    Ok((trace_id, decode_request(&payload[8..])?))
}

/// Decodes a frame payload into a request.  Trailing bytes after the message
/// are corruption, not padding.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut r = ByteReader::new(payload);
    let request = match r.u8()? {
        0 => Request::SubmitTune {
            matrix: read_matrix(&mut r)?,
            device: r.str().map_err(ProtoError::from)?,
        },
        1 => Request::PollJob { job_id: r.u64()? },
        2 => Request::Spmv {
            job_id: r.u64()?,
            x: read_vec(&mut r)?,
        },
        3 => Request::StoreStats,
        4 => Request::Shutdown,
        5 => Request::Hello {
            client_id: r.u64()?,
        },
        6 => Request::TenantStats,
        7 => Request::Metrics,
        8 => Request::Trace,
        other => {
            return Err(ProtoError::Corrupt(format!("unknown request tag {other}")));
        }
    };
    if !r.finished() {
        return Err(ProtoError::Corrupt(format!(
            "{} trailing bytes after the request",
            r.remaining()
        )));
    }
    Ok(request)
}

/// Encodes a response into a frame payload.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut w = ByteWriter::default();
    match response {
        Response::Submitted { job_id } => {
            w.u8(0);
            w.u64(*job_id);
        }
        Response::Busy {
            queue_capacity,
            retry_after_ms,
        } => {
            w.u8(1);
            w.u64(*queue_capacity);
            w.u64(*retry_after_ms);
        }
        Response::Status { job_id, state } => {
            w.u8(2);
            w.u64(*job_id);
            match state {
                JobState::Queued => w.u8(0),
                JobState::Running => w.u8(1),
                JobState::Done(summary) => {
                    w.u8(2);
                    write_summary(&mut w, summary);
                }
                JobState::Failed { error } => {
                    w.u8(3);
                    w.str(error);
                }
                JobState::Unknown => w.u8(4),
            }
        }
        Response::SpmvResult { y } => {
            w.u8(3);
            write_vec(&mut w, y);
        }
        Response::Stats(stats) => {
            w.u8(4);
            write_stats(&mut w, stats);
        }
        Response::ShuttingDown => w.u8(5),
        Response::Error { kind, message } => {
            w.u8(6);
            w.u8(*kind as u8);
            w.str(message);
        }
        Response::Welcome { client_id, weight } => {
            w.u8(7);
            w.u64(*client_id);
            w.u64(*weight);
        }
        Response::Tenants(tenants) => {
            w.u8(8);
            w.u64(tenants.len() as u64);
            for tenant in tenants {
                write_tenant(&mut w, tenant);
            }
        }
        Response::MetricsText { text } => {
            w.u8(9);
            w.str(text);
        }
        Response::TraceSpans {
            server_now_us,
            spans,
        } => {
            w.u8(10);
            w.u64(*server_now_us);
            w.u64(spans.len() as u64);
            for span in spans {
                write_span(&mut w, span);
            }
        }
    }
    w.into_bytes()
}

/// Decodes a frame payload into a response.  Trailing bytes after the
/// message are corruption, not padding.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut r = ByteReader::new(payload);
    let response = match r.u8()? {
        0 => Response::Submitted { job_id: r.u64()? },
        1 => Response::Busy {
            queue_capacity: r.u64()?,
            retry_after_ms: r.u64()?,
        },
        2 => {
            let job_id = r.u64()?;
            let state = match r.u8()? {
                0 => JobState::Queued,
                1 => JobState::Running,
                2 => JobState::Done(read_summary(&mut r)?),
                3 => JobState::Failed { error: r.str()? },
                4 => JobState::Unknown,
                other => {
                    return Err(ProtoError::Corrupt(format!(
                        "unknown job-state tag {other}"
                    )));
                }
            };
            Response::Status { job_id, state }
        }
        3 => Response::SpmvResult {
            y: read_vec(&mut r)?,
        },
        4 => Response::Stats(read_stats(&mut r)?),
        5 => Response::ShuttingDown,
        6 => Response::Error {
            kind: ErrorKind::from_tag(r.u8()?)?,
            message: r.str()?,
        },
        7 => Response::Welcome {
            client_id: r.u64()?,
            weight: r.u64()?,
        },
        8 => {
            let count = r.count_of("tenant record", 48)?;
            let mut tenants = Vec::with_capacity(count);
            for _ in 0..count {
                tenants.push(read_tenant(&mut r)?);
            }
            Response::Tenants(tenants)
        }
        9 => Response::MetricsText { text: r.str()? },
        10 => {
            let server_now_us = r.u64()?;
            // Smallest span on the wire: empty name (8), three u64s (24),
            // depth (4), no-arg flag (1), trace id (8) = 45 bytes.
            let count = r.count_of("trace span", 45)?;
            let mut spans = Vec::with_capacity(count);
            for _ in 0..count {
                spans.push(read_span(&mut r)?);
            }
            Response::TraceSpans {
                server_now_us,
                spans,
            }
        }
        other => {
            return Err(ProtoError::Corrupt(format!("unknown response tag {other}")));
        }
    };
    if !r.finished() {
        return Err(ProtoError::Corrupt(format!(
            "{} trailing bytes after the response",
            r.remaining()
        )));
    }
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_matrix::gen;

    fn sample_matrix() -> CsrMatrix {
        gen::powerlaw(32, 24, 3, 2.0, 5)
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::SubmitTune {
                matrix: sample_matrix(),
                device: "A100".to_string(),
            },
            Request::PollJob { job_id: 7 },
            Request::Spmv {
                job_id: 7,
                x: vec![1.0, -2.5, f32::MIN_POSITIVE],
            },
            Request::StoreStats,
            Request::Shutdown,
            Request::Hello {
                client_id: 0xFEED_BEEF,
            },
            Request::TenantStats,
            Request::Metrics,
            Request::Trace,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Submitted { job_id: 3 },
            Response::Busy {
                queue_capacity: 16,
                retry_after_ms: 250,
            },
            Response::Status {
                job_id: 3,
                state: JobState::Queued,
            },
            Response::Status {
                job_id: 3,
                state: JobState::Running,
            },
            Response::Status {
                job_id: 3,
                state: JobState::Done(JobSummary {
                    gflops: 123.5,
                    operator_graph: "COMPRESS;[0]ROW_DIV(2)".to_string(),
                    fresh_evaluations: 40,
                    warm_started: true,
                    wall_secs: 0.25,
                    queue_wait_secs: 0.0625,
                    kernel_shape: "rows[off:table,org:id,col:table]:avx2-nnz-x8+pf".to_string(),
                    specialized: true,
                }),
            },
            Response::Status {
                job_id: 9,
                state: JobState::Failed {
                    error: "matrix has no nonzeros".to_string(),
                },
            },
            Response::Status {
                job_id: 10,
                state: JobState::Unknown,
            },
            Response::SpmvResult {
                y: vec![0.0, 1.5, -3.25],
            },
            Response::Stats(ServerStats {
                store_memory_hits: 1,
                store_disk_loads: 2,
                store_cold_starts: 3,
                store_evictions: 4,
                jobs_submitted: 5,
                jobs_rejected: 6,
                jobs_completed: 7,
                jobs_failed: 8,
                jobs_gced: 9,
                queue_depth: 10,
                queue_capacity: 11,
                jobs_resident: 12,
                open_connections: 13,
            }),
            Response::ShuttingDown,
            Response::Error {
                kind: ErrorKind::UnknownJob,
                message: "job 99 was never issued".to_string(),
            },
            Response::Welcome {
                client_id: 0xFEED_BEEF,
                weight: 4,
            },
            Response::Tenants(vec![
                TenantStats {
                    client_id: 0,
                    weight: 1,
                    submitted: 2,
                    rejected: 3,
                    completed: 4,
                    queued: 5,
                },
                TenantStats {
                    client_id: 0xFEED_BEEF,
                    weight: 4,
                    submitted: 40,
                    rejected: 1,
                    completed: 39,
                    queued: 0,
                },
            ]),
            Response::Tenants(Vec::new()),
            Response::MetricsText {
                text: "# TYPE net_requests_total counter\nnet_requests_total{tenant=\"0\"} 7\n"
                    .to_string(),
            },
            Response::MetricsText {
                text: String::new(),
            },
            Response::TraceSpans {
                server_now_us: 1_234_567,
                spans: vec![
                    alpha_telemetry::OwnedSpan {
                        name: "net.tune_exec".to_string(),
                        ts_us: 100,
                        dur_us: 2_500,
                        tid: 3,
                        depth: 0,
                        arg: Some(("job".to_string(), 7)),
                        trace_id: 0xABCD,
                    },
                    alpha_telemetry::OwnedSpan {
                        name: String::new(),
                        ts_us: 0,
                        dur_us: 0,
                        tid: 0,
                        depth: 2,
                        arg: None,
                        trace_id: 0,
                    },
                ],
            },
            Response::TraceSpans {
                server_now_us: 0,
                spans: Vec::new(),
            },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for request in sample_requests() {
            let payload = encode_request(&request);
            assert_eq!(decode_request(&payload).unwrap(), request);
        }
    }

    #[test]
    fn every_response_round_trips() {
        for response in sample_responses() {
            let payload = encode_response(&response);
            assert_eq!(decode_response(&payload).unwrap(), response);
        }
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let payload = encode_request(&Request::PollJob { job_id: 42 });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(&wire[..4], &NET_MAGIC);
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        // A second read on the drained stream reports a clean close.
        assert!(matches!(read_frame(&mut cursor), Err(ProtoError::Closed)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"x").unwrap();
        wire[0] = b'X';
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(ProtoError::BadMagic)
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"x").unwrap();
        wire[4..8].copy_from_slice(&(PROTOCOL_VERSION + 1).to_le_bytes());
        match read_frame(&mut &wire[..]) {
            Err(ProtoError::VersionMismatch { found, expected }) => {
                assert_eq!(found, PROTOCOL_VERSION + 1);
                assert_eq!(expected, PROTOCOL_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"x").unwrap();
        wire[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        match read_frame(&mut &wire[..]) {
            Err(ProtoError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u64::MAX);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // The cap leaves room for real multi-million-nonzero submissions.
        const { assert!(MAX_FRAME_LEN >= 64 * 1024 * 1024) }
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let payload = encode_request(&Request::SubmitTune {
            matrix: sample_matrix(),
            device: "A100".to_string(),
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for len in 1..wire.len() {
            match read_frame(&mut &wire[..len]) {
                Err(ProtoError::Truncated) => {}
                other => panic!("truncated at {len}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_truncation_and_trailing_garbage_are_rejected() {
        let payload = encode_request(&Request::Spmv {
            job_id: 3,
            x: vec![1.0, 2.0, 3.0],
        });
        for len in 0..payload.len() {
            match decode_request(&payload[..len]) {
                Err(ProtoError::Truncated) | Err(ProtoError::Corrupt(_)) => {}
                other => panic!("cut at {len}: expected an error, got {other:?}"),
            }
        }
        let mut padded = payload.clone();
        padded.push(0);
        assert!(matches!(
            decode_request(&padded),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn element_counts_are_bounded_by_element_size_not_record_count() {
        // A count that fits the remaining bytes at 1 byte/record but not at
        // the real 4 bytes/element must be rejected BEFORE any allocation:
        // otherwise a near-cap frame could drive a 4x-amplified Vec.
        let mut w = ByteWriter::default();
        w.u8(2); // Spmv
        w.u64(1); // job id
        w.u64(100); // claims 100 elements...
        w.raw(&[0u8; 150]); // ...but only 150 bytes follow (need 400)
        match decode_request(&w.into_bytes()) {
            Err(ProtoError::Corrupt(msg)) => {
                assert!(msg.contains("exceeds"), "got: {msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(
            decode_request(&[250]),
            Err(ProtoError::Corrupt(_))
        ));
        assert!(matches!(
            decode_response(&[250]),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn invalid_matrices_fail_csr_validation_at_decode() {
        let mut w = ByteWriter::default();
        w.u8(0); // SubmitTune
        w.u64(2); // rows
        w.u64(2); // cols
        w.u64(3); // row_offsets
        w.u32(0);
        w.u32(5); // offset beyond nnz
        w.u32(1);
        w.u64(1); // col_indices
        w.u32(0);
        w.u64(1); // values
        w.f32(1.0);
        w.str("A100");
        match decode_request(&w.into_bytes()) {
            Err(ProtoError::Corrupt(msg)) => assert!(msg.contains("CSR validation")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn assembler_matches_read_frame_at_every_chunking() {
        // The incremental assembler must produce exactly what the blocking
        // reader produces, no matter how the bytes are sliced.
        let payloads: Vec<Vec<u8>> = sample_requests().iter().map(encode_request).collect();
        let mut wire = Vec::new();
        for payload in &payloads {
            write_frame(&mut wire, payload).unwrap();
        }
        for chunk_size in [1usize, 2, 3, 7, 16, 17, 64, wire.len()] {
            let mut assembler = FrameAssembler::with_deadline(std::time::Duration::from_secs(60));
            let mut out = Vec::new();
            for chunk in wire.chunks(chunk_size) {
                assembler.push(chunk, &mut out).unwrap();
            }
            let expected: Vec<(u32, Vec<u8>)> = payloads
                .iter()
                .map(|p| (PROTOCOL_VERSION, p.clone()))
                .collect();
            assert_eq!(out, expected, "chunk size {chunk_size} diverged");
            assert!(!assembler.mid_frame(), "no partial frame may remain");
        }
    }

    #[test]
    fn compat_window_accepts_v4_frames_and_reports_their_version() {
        let payload = encode_request(&Request::StoreStats);
        let mut wire = Vec::new();
        write_frame_versioned(&mut wire, MIN_PROTOCOL_VERSION, &payload).unwrap();
        // The blocking reader accepts the old stamp...
        assert_eq!(read_frame(&mut &wire[..]).unwrap(), payload);
        // ...and the assembler surfaces which version the frame used.
        let mut assembler = FrameAssembler::with_deadline(std::time::Duration::from_secs(60));
        let mut out = Vec::new();
        assembler.push(&wire, &mut out).unwrap();
        assert_eq!(out, vec![(MIN_PROTOCOL_VERSION, payload)]);
        // Below the window is rejected like above it.
        let mut ancient = Vec::new();
        write_frame_versioned(&mut ancient, MIN_PROTOCOL_VERSION - 1, b"x").unwrap();
        assert!(matches!(
            read_frame(&mut &ancient[..]),
            Err(ProtoError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn traced_envelope_round_trips_and_v4_decodes_untraced() {
        for request in sample_requests() {
            let traced = encode_request_traced(0x1122_3344_5566_7788, &request);
            let (trace_id, decoded) = decode_request_versioned(PROTOCOL_VERSION, &traced).unwrap();
            assert_eq!(trace_id, 0x1122_3344_5566_7788);
            assert_eq!(decoded, request);
            // The same body as a v4 payload decodes with trace id 0.
            let bare = encode_request(&request);
            let (trace_id, decoded) =
                decode_request_versioned(MIN_PROTOCOL_VERSION, &bare).unwrap();
            assert_eq!(trace_id, 0);
            assert_eq!(decoded, request);
        }
        // A v5 payload too short for its trace id is truncation, not a panic.
        assert!(matches!(
            decode_request_versioned(PROTOCOL_VERSION, &[1, 2, 3]),
            Err(ProtoError::Truncated)
        ));
    }

    #[test]
    fn assembler_rejects_bad_headers_before_buffering_payload() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"x").unwrap();
        let mut out = Vec::new();

        let mut bad_magic = wire.clone();
        bad_magic[0] = b'X';
        let mut assembler = FrameAssembler::with_deadline(std::time::Duration::from_secs(60));
        assert!(matches!(
            assembler.push(&bad_magic, &mut out),
            Err(ProtoError::BadMagic)
        ));

        let mut bad_version = wire.clone();
        bad_version[4..8].copy_from_slice(&(PROTOCOL_VERSION + 9).to_le_bytes());
        let mut assembler = FrameAssembler::with_deadline(std::time::Duration::from_secs(60));
        assert!(matches!(
            assembler.push(&bad_version, &mut out),
            Err(ProtoError::VersionMismatch { .. })
        ));

        let mut oversize = wire.clone();
        oversize[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut assembler = FrameAssembler::with_deadline(std::time::Duration::from_secs(60));
        assert!(matches!(
            assembler.push(&oversize, &mut out),
            Err(ProtoError::FrameTooLarge { .. })
        ));
        assert!(out.is_empty(), "no frame may complete from a bad header");
    }

    #[test]
    fn assembler_trips_the_slow_loris_deadline_on_partial_frames() {
        let mut assembler = FrameAssembler::with_deadline(std::time::Duration::from_millis(20));
        let mut out = Vec::new();
        assert!(!assembler.overdue(), "no frame started, no deadline");
        assembler.push(&NET_MAGIC[..2], &mut out).unwrap(); // half a magic
        assert!(assembler.mid_frame());
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert!(assembler.overdue(), "a stalled partial frame must trip");

        // A frame that completes in time resets the clock entirely.
        let mut assembler = FrameAssembler::with_deadline(std::time::Duration::from_millis(50));
        let mut wire = Vec::new();
        write_frame(&mut wire, b"ok").unwrap();
        assembler.push(&wire, &mut out).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(!assembler.overdue(), "completed frames carry no deadline");
    }

    #[test]
    fn seeded_fuzz_mutations_never_panic_the_decoders() {
        // A deterministic xorshift64* over every sample payload: flip bytes,
        // truncate, extend — the decoders must always return, never panic.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545F4914F6CDD1D);
            state
        };
        let mut payloads: Vec<Vec<u8>> = sample_requests().iter().map(encode_request).collect();
        payloads.extend(sample_responses().iter().map(encode_response));
        for payload in &payloads {
            for _ in 0..200 {
                let mut mutated = payload.clone();
                match next() % 4 {
                    0 if !mutated.is_empty() => {
                        let at = (next() as usize) % mutated.len();
                        mutated[at] ^= (next() % 255 + 1) as u8;
                    }
                    1 => {
                        let keep = (next() as usize) % (mutated.len() + 1);
                        mutated.truncate(keep);
                    }
                    2 => {
                        mutated.push(next() as u8);
                    }
                    _ => {
                        if mutated.len() > 1 {
                            let at = (next() as usize) % mutated.len();
                            mutated.remove(at);
                        }
                    }
                }
                // Every decoder must survive both kinds of payloads.
                let _ = decode_request(&mutated);
                let _ = decode_response(&mutated);
                let _ = decode_request_versioned(PROTOCOL_VERSION, &mutated);
            }
        }
    }
}
