//! A minimal readiness reactor: level-triggered I/O multiplexing over
//! nonblocking sockets, std-only.
//!
//! The daemon's event loop needs one thing from the OS: "which of these
//! sockets can make progress right now?"  On Linux that is `epoll`, on the
//! BSD family `kqueue`.  Neither is exposed by `std`, and this workspace has
//! no crates.io access, so the handful of syscalls are declared here
//! directly (`std` already links the platform libc, so the symbols resolve
//! at link time without any extra dependency).
//!
//! Scope is deliberately tiny — exactly what the server's event loop
//! consumes:
//!
//! * [`Reactor::register`] / [`Reactor::modify`] / [`Reactor::deregister`]
//!   attach a file descriptor with a caller-chosen `usize` token and an
//!   [`Interest`] (readable, writable, or both).
//! * [`Reactor::poll`] blocks until something is ready (or a timeout) and
//!   fills a caller-owned `Vec<Event>`.
//! * [`Reactor::waker`] hands out a cheaply cloneable [`Waker`] that any
//!   thread can use to make a concurrent `poll` return immediately — how
//!   the exec workers tell the loop "a response is ready to send".  The
//!   waker is a `std` Unix socketpair, not more FFI: writing one byte to
//!   the registered read side is a readiness event like any other, drained
//!   internally and never surfaced to the caller.
//!
//! Events are **level-triggered**: a socket with unread bytes keeps
//! reporting readable on every poll.  The server leans on this — it may
//! defer reading a connection while a response is in flight and pick the
//! data up on a later tick without any re-arm bookkeeping.

use std::io;
use std::io::{Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// Which readiness directions a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a peer hangup to observe).
    pub readable: bool,
    /// Wake when the fd's send buffer can accept bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-side interest only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-side interest only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Reactor::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// The fd can be read without blocking.
    pub readable: bool,
    /// The fd can be written without blocking.
    pub writable: bool,
    /// The peer closed or the fd errored (`EPOLLHUP`/`EPOLLERR`/`EV_EOF`).
    /// The owner should read to EOF / drop the connection.
    pub closed: bool,
}

/// Reserved kernel-side token for the internal waker registration; never
/// reported to callers, so user tokens may use the full `usize` range below
/// this sentinel.
const WAKER_TOKEN: u64 = u64::MAX;

/// Cross-thread wake handle for a [`Reactor`]; see [`Reactor::waker`].
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Makes the reactor's current (or next) [`Reactor::poll`] return
    /// immediately.  Wakes coalesce: the socketpair buffer filling up means
    /// a wake is already pending, which is all a wake means.
    pub fn wake(&self) {
        match (&*self.tx).write(&[1u8]) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {} // already pending
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                let _ = (&*self.tx).write(&[1u8]);
            }
            Err(_) => {} // reactor gone; nothing left to wake
        }
    }
}

/// A level-triggered readiness multiplexer (epoll on Linux, kqueue on the
/// BSD family) with a built-in cross-thread [`Waker`].
pub struct Reactor {
    selector: sys::Selector,
    waker_tx: Arc<UnixStream>,
    waker_rx: UnixStream,
}

impl Reactor {
    /// Opens the OS selector and wires up the internal waker pair.
    pub fn new() -> io::Result<Reactor> {
        let selector = sys::Selector::new()?;
        let (waker_tx, waker_rx) = UnixStream::pair()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        selector.register(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READABLE)?;
        Ok(Reactor {
            selector,
            waker_tx: Arc::new(waker_tx),
            waker_rx,
        })
    }

    /// Starts watching `fd` under `token`.  The fd must outlive the
    /// registration (deregister before closing it).
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.selector.register(fd, token as u64, interest)
    }

    /// Replaces the interest set of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.selector.modify(fd, token as u64, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }

    /// A cheaply cloneable handle that interrupts [`Reactor::poll`] from any
    /// thread.
    pub fn waker(&self) -> Waker {
        Waker {
            tx: Arc::clone(&self.waker_tx),
        }
    }

    /// Blocks until at least one registered fd is ready, the waker fires, or
    /// `timeout` elapses (`None` blocks indefinitely); clears and fills
    /// `events`.  Returning with `events` empty means timeout or wake — the
    /// caller's drain loops simply find nothing to do.  `EINTR` retries
    /// internally.
    pub fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.selector.poll(events, timeout)?;
        let mut woken = false;
        events.retain(|event| {
            if event.token as u64 == WAKER_TOKEN {
                woken = true;
                false
            } else {
                true
            }
        });
        if woken {
            // Drain the pending wake bytes so level-triggering quiesces; more
            // wakes may race in after the drain, which just means one extra
            // (harmless) pass through the caller's loop.
            let mut buf = [0u8; 64];
            while matches!(self.waker_rx.read(&mut buf), Ok(n) if n > 0) {}
        }
        Ok(())
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("selector", &self.selector)
            .finish()
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll backend.  Constants and the `epoll_event` layout follow
    //! `<sys/epoll.h>`; the struct is packed on x86 (the kernel ABI there)
    //! and naturally aligned elsewhere.

    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;

    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub struct Selector {
        epfd: i32,
        /// Kernel-filled buffer reused across polls.
        buf: std::sync::Mutex<Vec<EpollEvent>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Selector {
                epfd,
                buf: std::sync::Mutex::new(vec![EpollEvent { events: 0, data: 0 }; 256]),
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            events
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) }).map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut event = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
        }

        pub fn poll(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            let mut buf = self.buf.lock().expect("selector poisoned");
            let n = loop {
                let ret = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for raw in buf.iter().take(n) {
                let (events, data) = (raw.events, raw.data);
                out.push(Event {
                    token: data as usize,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    closed: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }

    impl std::fmt::Debug for Selector {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Selector(epoll)")
                .field("epfd", &self.epfd)
                .finish()
        }
    }
}

#[cfg(any(target_os = "macos", target_os = "ios", target_os = "freebsd"))]
mod sys {
    //! kqueue backend.  Read and write filters are separate kernel
    //! registrations, so an [`Interest`] maps to up to two kevents.

    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::ptr;
    use std::time::Duration;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(any(target_os = "macos", target_os = "ios"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: u64,
    }

    #[cfg(target_os = "freebsd")]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: i64,
        udata: u64,
        ext: [u64; 4],
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const KEvent,
            nchanges: i32,
            eventlist: *mut KEvent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    #[cfg(any(target_os = "macos", target_os = "ios"))]
    fn kev(fd: RawFd, filter: i16, flags: u16, token: u64) -> KEvent {
        KEvent {
            ident: fd as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: token,
        }
    }

    #[cfg(target_os = "freebsd")]
    fn kev(fd: RawFd, filter: i16, flags: u16, token: u64) -> KEvent {
        KEvent {
            ident: fd as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: token,
            ext: [0; 4],
        }
    }

    pub struct Selector {
        kq: i32,
        buf: std::sync::Mutex<Vec<KEvent>>,
    }

    impl Selector {
        pub fn new() -> io::Result<Selector> {
            let kq = cvt(unsafe { kqueue() })?;
            Ok(Selector {
                kq,
                buf: std::sync::Mutex::new(vec![kev(0, 0, 0, 0); 256]),
            })
        }

        fn apply(&self, changes: &[KEvent]) -> io::Result<()> {
            cvt(unsafe {
                kevent(
                    self.kq,
                    changes.as_ptr(),
                    changes.len() as i32,
                    ptr::null_mut(),
                    0,
                    ptr::null(),
                )
            })
            .map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut changes = Vec::with_capacity(2);
            if interest.readable {
                changes.push(kev(fd, EVFILT_READ, EV_ADD, token));
            }
            if interest.writable {
                changes.push(kev(fd, EVFILT_WRITE, EV_ADD, token));
            }
            self.apply(&changes)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            // kqueue has no MOD: re-add the wanted filters, delete the rest
            // (a delete of an absent filter fails with ENOENT; ignore it by
            // issuing deletes one by one).
            let mut adds = Vec::with_capacity(2);
            if interest.readable {
                adds.push(kev(fd, EVFILT_READ, EV_ADD, token));
            } else {
                let _ = self.apply(&[kev(fd, EVFILT_READ, EV_DELETE, token)]);
            }
            if interest.writable {
                adds.push(kev(fd, EVFILT_WRITE, EV_ADD, token));
            } else {
                let _ = self.apply(&[kev(fd, EVFILT_WRITE, EV_DELETE, token)]);
            }
            self.apply(&adds)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let _ = self.apply(&[kev(fd, EVFILT_READ, EV_DELETE, 0)]);
            let _ = self.apply(&[kev(fd, EVFILT_WRITE, EV_DELETE, 0)]);
            Ok(())
        }

        pub fn poll(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let ts;
            let ts_ptr = match timeout {
                None => ptr::null(),
                Some(d) => {
                    ts = Timespec {
                        tv_sec: d.as_secs().min(i64::MAX as u64) as i64,
                        tv_nsec: d.subsec_nanos() as i64,
                    };
                    &ts as *const Timespec
                }
            };
            let mut buf = self.buf.lock().expect("selector poisoned");
            let n = loop {
                let ret = unsafe {
                    kevent(
                        self.kq,
                        ptr::null(),
                        0,
                        buf.as_mut_ptr(),
                        buf.len() as i32,
                        ts_ptr,
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for raw in buf.iter().take(n) {
                out.push(Event {
                    token: raw.udata as usize,
                    readable: raw.filter == EVFILT_READ,
                    writable: raw.filter == EVFILT_WRITE,
                    closed: raw.flags & (EV_EOF | EV_ERROR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe {
                close(self.kq);
            }
        }
    }

    impl std::fmt::Debug for Selector {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Selector(kqueue)")
                .field("kq", &self.kq)
                .finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_interrupts_an_indefinite_poll() {
        let mut reactor = Reactor::new().unwrap();
        let waker = reactor.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        // Blocks until the waker fires; the waker event itself is filtered.
        reactor.poll(&mut events, None).unwrap();
        assert!(events.is_empty());
        handle.join().unwrap();
    }

    #[test]
    fn wakes_coalesce_and_drain() {
        let mut reactor = Reactor::new().unwrap();
        let waker = reactor.waker();
        for _ in 0..1000 {
            waker.wake();
        }
        let mut events = Vec::new();
        reactor
            .poll(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert!(events.is_empty());
        // All pending wakes were drained: the next poll times out quietly.
        let start = std::time::Instant::now();
        reactor
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn reports_accept_readiness_and_data_readiness_by_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut reactor = Reactor::new().unwrap();
        reactor
            .register(listener.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        reactor
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "listener must report accept readiness, got {events:?}"
        );

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        reactor
            .register(server_side.as_raw_fd(), 8, Interest::BOTH)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_readable = false;
        while std::time::Instant::now() < deadline && !saw_readable {
            reactor
                .poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            saw_readable = events.iter().any(|e| e.token == 8 && e.readable);
        }
        assert!(saw_readable, "connection data must surface on token 8");
        reactor.deregister(server_side.as_raw_fd()).unwrap();
        reactor.deregister(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn modify_toggles_interest_directions() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut reactor = Reactor::new().unwrap();
        reactor
            .register(server_side.as_raw_fd(), 3, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        reactor
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 3 && e.writable),
            "idle socket must be writable, got {events:?}"
        );

        // Flip to read-only interest: writability must stop reporting, so a
        // poll with nothing to read times out empty.
        reactor
            .modify(server_side.as_raw_fd(), 3, Interest::READABLE)
            .unwrap();
        reactor
            .poll(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert!(
            events.iter().all(|e| !e.writable),
            "writable interest was dropped, got {events:?}"
        );
        drop(client);
    }

    #[test]
    fn peer_hangup_reports_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut reactor = Reactor::new().unwrap();
        reactor
            .register(server_side.as_raw_fd(), 9, Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_closed = false;
        while std::time::Instant::now() < deadline && !saw_closed {
            reactor
                .poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            saw_closed = events.iter().any(|e| e.token == 9 && e.closed);
        }
        assert!(saw_closed, "peer hangup must report closed");
    }
}
