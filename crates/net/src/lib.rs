//! `alpha-net` — the networked serving tier of the AlphaSparse
//! reproduction.
//!
//! PR 2/3 made tuning an investment (`DesignStore` + `TuningService` +
//! native execution); this crate makes the investment *reachable*: a
//! std-only TCP daemon that accepts Matrix Market-sized matrices over a
//! versioned binary wire protocol, tunes them through a shared warm store,
//! and executes the resulting machine-designed SpMV kernels against
//! client-supplied vectors — the long-lived-service shape JIT-SpMV systems
//! use to amortize tuning cost across requests.
//!
//! The three pieces:
//!
//! * [`proto`] — the wire protocol: `ANET`-magic, versioned,
//!   length-prefixed frames whose payloads use the exact codec discipline
//!   of the durable `ACDS` cache files.  Adversarial bytes produce typed
//!   errors, never panics.
//! * [`NetServer`] — the daemon: accept loop, bounded job queue with
//!   reject-with-backpressure admission control, a tuning worker pool over
//!   a shared [`TuningService`](alpha_serve::TuningService), and an
//!   in-memory job table with terminal-state GC.
//! * [`Client`] — the typed blocking client: submit, poll/wait, remote
//!   SpMV, stats, shutdown.
//!
//! ```
//! use alpha_net::{Client, NetServer, ServerConfig};
//! use alpha_serve::{DesignStore, TuningService};
//! use alphasparse::SearchConfig;
//! use alpha_matrix::gen;
//!
//! let dir = std::env::temp_dir().join(format!("alpha_net_doc_{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let service = TuningService::new(
//!     DesignStore::open(&dir).expect("store opens"),
//!     SearchConfig { max_iterations: 6, ..SearchConfig::default() },
//! );
//! let server = NetServer::spawn("127.0.0.1:0", service, ServerConfig::default())
//!     .expect("daemon binds");
//!
//! let mut client = Client::connect(server.local_addr()).expect("client connects");
//! let matrix = gen::powerlaw(128, 128, 4, 2.0, 1);
//! let job = client.submit_tune(&matrix, "A100").expect("submission is admitted");
//! let summary = client
//!     .wait_job(job, std::time::Duration::from_millis(10), std::time::Duration::from_secs(60))
//!     .expect("tuning finishes");
//! assert!(summary.gflops > 0.0);
//!
//! let y = client.spmv(job, &vec![1.0; 128]).expect("remote SpMV runs");
//! assert_eq!(y.len(), 128);
//!
//! client.shutdown().expect("daemon acknowledges");
//! server.join();
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

mod client;
pub mod proto;
pub mod reactor;
mod server;

pub use client::{Client, NetError, TraceFetch};
pub use proto::{
    ErrorKind, JobState, JobSummary, ProtoError, Request, Response, ServerStats, TenantStats,
    MAX_FRAME_LEN, MIN_PROTOCOL_VERSION, NET_MAGIC, PROTOCOL_VERSION,
};
pub use server::{device_by_name, NetServer, ServerConfig};
