//! The typed `alpha-net` client: one TCP connection, blocking
//! request/response calls, typed errors.

use crate::proto::{
    decode_response, encode_request_traced, read_frame, write_frame, ErrorKind, JobState,
    JobSummary, ProtoError, Request, Response, ServerStats, TenantStats,
};
use alpha_matrix::{CsrMatrix, Scalar};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One trace fetch: the server's half of a distributed trace plus the
/// local timestamps of the fetch round trip, which [`stitch`'s clock
/// estimate](alpha_telemetry::clock_offset_us) turns into a clock-domain
/// offset.
#[derive(Debug)]
pub struct TraceFetch {
    /// The server's µs-since-its-epoch clock when it answered.
    pub server_now_us: u64,
    /// Every span the server had recorded (its ring is drained).
    pub spans: Vec<alpha_telemetry::OwnedSpan>,
    /// Client clock when the fetch request was written, µs.
    pub sent_us: u64,
    /// Client clock when the response arrived, µs.
    pub received_us: u64,
}

impl TraceFetch {
    /// The estimated client-minus-server clock offset, suitable for
    /// [`alpha_telemetry::stitch_chrome_trace`].
    pub fn clock_offset_us(&self) -> i64 {
        alpha_telemetry::clock_offset_us(self.sent_us, self.received_us, self.server_now_us)
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// The wire itself failed (I/O, framing, decoding).
    Proto(ProtoError),
    /// The daemon answered with a typed error.
    Server {
        /// Machine-readable classification.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// Admission control rejected the submission — the job queue is full,
    /// or this tenant's fair-share credit is exhausted.  Nothing was
    /// enqueued; back off and retry.
    Busy {
        /// The daemon's queue bound, for sizing the backoff.
        queue_capacity: u64,
        /// The daemon's estimate of when retrying is worthwhile, in
        /// milliseconds (0 = immediately).
        retry_after_ms: u64,
    },
    /// The awaited job finished in failure.
    JobFailed {
        /// The failed job.
        job_id: u64,
        /// The server-side error.
        error: String,
    },
    /// The daemon sent a response that does not answer the request.
    UnexpectedResponse(String),
    /// [`Client::wait_job`] exceeded its deadline.
    Timeout {
        /// The job still pending when the deadline passed.
        job_id: u64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Proto(e) => write!(f, "{e}"),
            NetError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
            NetError::Busy {
                queue_capacity,
                retry_after_ms,
            } => write!(
                f,
                "daemon is busy (job queue of {queue_capacity} is full); retry in ~{retry_after_ms} ms"
            ),
            NetError::JobFailed { job_id, error } => write!(f, "job {job_id} failed: {error}"),
            NetError::UnexpectedResponse(what) => {
                write!(f, "daemon sent an unexpected response: {what}")
            }
            NetError::Timeout { job_id } => write!(f, "timed out waiting for job {job_id}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

impl From<NetError> for String {
    fn from(e: NetError) -> Self {
        e.to_string()
    }
}

/// A blocking client for one `alpha-net` daemon.
///
/// Each client owns one TCP connection and issues one request at a time;
/// spin up several clients for concurrency (the daemon serves every
/// connection on its own thread).
pub struct Client {
    stream: TcpStream,
    /// xorshift64 state for minting per-request trace ids; seeded from
    /// hasher entropy at connect, kept odd so the sequence never hits 0
    /// (0 means "untraced" on the wire).
    trace_state: u64,
}

impl Client {
    /// Connects to a daemon anonymously (tenant 0).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr).map_err(ProtoError::from)?;
        stream.set_nodelay(true).map_err(ProtoError::from)?;
        let seed = {
            use std::hash::{BuildHasher, Hasher};
            std::collections::hash_map::RandomState::new()
                .build_hasher()
                .finish()
                | 1
        };
        Ok(Client {
            stream,
            trace_state: seed,
        })
    }

    /// Mints the next request's trace id: a nonzero 64-bit value unique
    /// (with overwhelming probability) across clients and requests.
    fn mint_trace_id(&mut self) -> u64 {
        let mut x = self.trace_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.trace_state = x;
        x
    }

    /// Connects and identifies as tenant `client_id` (see
    /// [`Request::Hello`]): the daemon's weighted admission and fairness
    /// accounting key on this identity.  Returns the client and the
    /// admission weight the daemon assigned.
    pub fn connect_as<A: ToSocketAddrs>(
        addr: A,
        client_id: u64,
    ) -> Result<(Client, u64), NetError> {
        let mut client = Client::connect(addr)?;
        match client.roundtrip(&Request::Hello { client_id })? {
            Response::Welcome {
                client_id: echoed,
                weight,
            } if echoed == client_id => Ok((client, weight)),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, NetError> {
        // Every request is traced: mint an id, scope this thread's spans to
        // it, and carry it in the frame so the server's spans and flight
        // events tag themselves with the same id.
        let trace_id = self.mint_trace_id();
        let prev_trace = alpha_telemetry::set_current_trace_id(trace_id);
        let result = (|| -> Result<Response, NetError> {
            let _span = alpha_telemetry::span!(client_span_name(request));
            write_frame(&mut self.stream, &encode_request_traced(trace_id, request))?;
            let payload = read_frame(&mut self.stream)?;
            Ok(decode_response(&payload)?)
        })();
        alpha_telemetry::set_current_trace_id(prev_trace);
        match result? {
            Response::Error { kind, message } => Err(NetError::Server { kind, message }),
            other => Ok(other),
        }
    }

    /// Submits `matrix` for tuning on the named device, returning the job
    /// id.  A full queue is [`NetError::Busy`] — nothing was enqueued.
    pub fn submit_tune(&mut self, matrix: &CsrMatrix, device: &str) -> Result<u64, NetError> {
        match self.roundtrip(&Request::SubmitTune {
            matrix: matrix.clone(),
            device: device.to_string(),
        })? {
            Response::Submitted { job_id } => Ok(job_id),
            Response::Busy {
                queue_capacity,
                retry_after_ms,
            } => Err(NetError::Busy {
                queue_capacity,
                retry_after_ms,
            }),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// [`Client::submit_tune`] with bounded retry on backpressure: sleeps
    /// `backoff` between attempts until the daemon admits the job or
    /// `deadline` elapses.  Every other error is returned immediately.
    pub fn submit_tune_with_backoff(
        &mut self,
        matrix: &CsrMatrix,
        device: &str,
        backoff: Duration,
        deadline: Duration,
    ) -> Result<u64, NetError> {
        self.submit_tune_counting_backoff(matrix, device, backoff, deadline)
            .map(|(job_id, _)| job_id)
    }

    /// [`Client::submit_tune_with_backoff`], additionally reporting how
    /// many [`NetError::Busy`] rejections were absorbed before admission —
    /// the backpressure signal a load generator wants to record.
    ///
    /// When the daemon's `Busy` carries a nonzero `retry_after_ms` hint, the
    /// wait honours it (capped at 4x the caller's `backoff` so a pessimistic
    /// daemon estimate cannot stall the client); otherwise the caller's
    /// `backoff` is used as-is.
    pub fn submit_tune_counting_backoff(
        &mut self,
        matrix: &CsrMatrix,
        device: &str,
        backoff: Duration,
        deadline: Duration,
    ) -> Result<(u64, u64), NetError> {
        let start = Instant::now();
        let mut rejections = 0u64;
        loop {
            match self.submit_tune(matrix, device) {
                Ok(job_id) => return Ok((job_id, rejections)),
                Err(NetError::Busy {
                    queue_capacity,
                    retry_after_ms,
                }) => {
                    rejections += 1;
                    if start.elapsed() >= deadline {
                        return Err(NetError::Busy {
                            queue_capacity,
                            retry_after_ms,
                        });
                    }
                    let hinted = Duration::from_millis(retry_after_ms);
                    let wait = if retry_after_ms > 0 {
                        hinted.min(backoff.saturating_mul(4)).max(backoff)
                    } else {
                        backoff
                    };
                    std::thread::sleep(wait);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Asks for a job's current state.
    pub fn poll_job(&mut self, job_id: u64) -> Result<JobState, NetError> {
        match self.roundtrip(&Request::PollJob { job_id })? {
            Response::Status {
                job_id: answered,
                state,
            } if answered == job_id => Ok(state),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Polls `job_id` every `poll_interval` until it is terminal, then
    /// returns its summary.  A failed job is [`NetError::JobFailed`]; a job
    /// the daemon no longer knows is an [`ErrorKind::UnknownJob`] server
    /// error; exceeding `deadline` is [`NetError::Timeout`].
    pub fn wait_job(
        &mut self,
        job_id: u64,
        poll_interval: Duration,
        deadline: Duration,
    ) -> Result<JobSummary, NetError> {
        let start = Instant::now();
        loop {
            match self.poll_job(job_id)? {
                JobState::Done(summary) => return Ok(summary),
                JobState::Failed { error } => return Err(NetError::JobFailed { job_id, error }),
                JobState::Unknown => {
                    return Err(NetError::Server {
                        kind: ErrorKind::UnknownJob,
                        message: format!("job {job_id} is unknown to the daemon"),
                    });
                }
                JobState::Queued | JobState::Running => {
                    if start.elapsed() >= deadline {
                        return Err(NetError::Timeout { job_id });
                    }
                    std::thread::sleep(poll_interval);
                }
            }
        }
    }

    /// Runs `y = A·x` remotely with a finished job's tuned kernel.  Under
    /// extreme load the daemon may shed the request with
    /// [`NetError::Busy`] (its execution lane is saturated) — nothing ran;
    /// retry after the hinted delay.
    pub fn spmv(&mut self, job_id: u64, x: &[Scalar]) -> Result<Vec<Scalar>, NetError> {
        match self.roundtrip(&Request::Spmv {
            job_id,
            x: x.to_vec(),
        })? {
            Response::SpmvResult { y } => Ok(y),
            Response::Busy {
                queue_capacity,
                retry_after_ms,
            } => Err(NetError::Busy {
                queue_capacity,
                retry_after_ms,
            }),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's store and job-table counters.
    pub fn store_stats(&mut self) -> Result<ServerStats, NetError> {
        match self.roundtrip(&Request::StoreStats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's per-tenant fairness accounting, sorted by
    /// tenant id.
    pub fn tenant_stats(&mut self) -> Result<Vec<TenantStats>, NetError> {
        match self.roundtrip(&Request::TenantStats)? {
            Response::Tenants(tenants) => Ok(tenants),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's full telemetry registry as a Prometheus text
    /// exposition — every counter, gauge and histogram the process has
    /// recorded, not just the curated [`ServerStats`] subset.  The same
    /// bytes are served over plain HTTP when the daemon was configured
    /// with a metrics address.
    pub fn metrics(&mut self) -> Result<String, NetError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::MetricsText { text } => Ok(text),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Drains the daemon's span ring into a [`TraceFetch`]: the server-side
    /// half of every distributed trace recorded since the last fetch, plus
    /// the timestamps needed to map the server clock into this process's.
    /// Feed the result to [`alpha_telemetry::stitch_chrome_trace`] together
    /// with locally drained spans for one Chrome trace spanning both sides.
    pub fn fetch_trace(&mut self) -> Result<TraceFetch, NetError> {
        let sent_us = alpha_telemetry::now_us();
        let response = self.roundtrip(&Request::Trace)?;
        let received_us = alpha_telemetry::now_us();
        match response {
            Response::TraceSpans {
                server_now_us,
                spans,
            } => Ok(TraceFetch {
                server_now_us,
                spans,
                sent_us,
                received_us,
            }),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to shut down cleanly.  Returns once the daemon
    /// acknowledged; pair with
    /// [`NetServer::join`](crate::NetServer::join) on the hosting side.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

/// The client-side span name of one request kind — all prefixed `client.`
/// so a stitcher can partition a shared in-process ring by origin.
fn client_span_name(request: &Request) -> &'static str {
    match request {
        Request::Hello { .. } => "client.hello",
        Request::SubmitTune { .. } => "client.submit",
        Request::PollJob { .. } => "client.poll",
        Request::Spmv { .. } => "client.spmv",
        Request::StoreStats => "client.stats",
        Request::TenantStats => "client.tenant_stats",
        Request::Metrics => "client.metrics",
        Request::Trace => "client.trace",
        Request::Shutdown => "client.shutdown",
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}
