//! The typed `alpha-net` client: one TCP connection, blocking
//! request/response calls, typed errors.

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, ErrorKind, JobState, JobSummary,
    ProtoError, Request, Response, ServerStats, TenantStats,
};
use alpha_matrix::{CsrMatrix, Scalar};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum NetError {
    /// The wire itself failed (I/O, framing, decoding).
    Proto(ProtoError),
    /// The daemon answered with a typed error.
    Server {
        /// Machine-readable classification.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
    /// Admission control rejected the submission — the job queue is full,
    /// or this tenant's fair-share credit is exhausted.  Nothing was
    /// enqueued; back off and retry.
    Busy {
        /// The daemon's queue bound, for sizing the backoff.
        queue_capacity: u64,
        /// The daemon's estimate of when retrying is worthwhile, in
        /// milliseconds (0 = immediately).
        retry_after_ms: u64,
    },
    /// The awaited job finished in failure.
    JobFailed {
        /// The failed job.
        job_id: u64,
        /// The server-side error.
        error: String,
    },
    /// The daemon sent a response that does not answer the request.
    UnexpectedResponse(String),
    /// [`Client::wait_job`] exceeded its deadline.
    Timeout {
        /// The job still pending when the deadline passed.
        job_id: u64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Proto(e) => write!(f, "{e}"),
            NetError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
            NetError::Busy {
                queue_capacity,
                retry_after_ms,
            } => write!(
                f,
                "daemon is busy (job queue of {queue_capacity} is full); retry in ~{retry_after_ms} ms"
            ),
            NetError::JobFailed { job_id, error } => write!(f, "job {job_id} failed: {error}"),
            NetError::UnexpectedResponse(what) => {
                write!(f, "daemon sent an unexpected response: {what}")
            }
            NetError::Timeout { job_id } => write!(f, "timed out waiting for job {job_id}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

impl From<NetError> for String {
    fn from(e: NetError) -> Self {
        e.to_string()
    }
}

/// A blocking client for one `alpha-net` daemon.
///
/// Each client owns one TCP connection and issues one request at a time;
/// spin up several clients for concurrency (the daemon serves every
/// connection on its own thread).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon anonymously (tenant 0).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr).map_err(ProtoError::from)?;
        stream.set_nodelay(true).map_err(ProtoError::from)?;
        Ok(Client { stream })
    }

    /// Connects and identifies as tenant `client_id` (see
    /// [`Request::Hello`]): the daemon's weighted admission and fairness
    /// accounting key on this identity.  Returns the client and the
    /// admission weight the daemon assigned.
    pub fn connect_as<A: ToSocketAddrs>(
        addr: A,
        client_id: u64,
    ) -> Result<(Client, u64), NetError> {
        let mut client = Client::connect(addr)?;
        match client.roundtrip(&Request::Hello { client_id })? {
            Response::Welcome {
                client_id: echoed,
                weight,
            } if echoed == client_id => Ok((client, weight)),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, NetError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        let payload = read_frame(&mut self.stream)?;
        let response = decode_response(&payload)?;
        match response {
            Response::Error { kind, message } => Err(NetError::Server { kind, message }),
            other => Ok(other),
        }
    }

    /// Submits `matrix` for tuning on the named device, returning the job
    /// id.  A full queue is [`NetError::Busy`] — nothing was enqueued.
    pub fn submit_tune(&mut self, matrix: &CsrMatrix, device: &str) -> Result<u64, NetError> {
        match self.roundtrip(&Request::SubmitTune {
            matrix: matrix.clone(),
            device: device.to_string(),
        })? {
            Response::Submitted { job_id } => Ok(job_id),
            Response::Busy {
                queue_capacity,
                retry_after_ms,
            } => Err(NetError::Busy {
                queue_capacity,
                retry_after_ms,
            }),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// [`Client::submit_tune`] with bounded retry on backpressure: sleeps
    /// `backoff` between attempts until the daemon admits the job or
    /// `deadline` elapses.  Every other error is returned immediately.
    pub fn submit_tune_with_backoff(
        &mut self,
        matrix: &CsrMatrix,
        device: &str,
        backoff: Duration,
        deadline: Duration,
    ) -> Result<u64, NetError> {
        self.submit_tune_counting_backoff(matrix, device, backoff, deadline)
            .map(|(job_id, _)| job_id)
    }

    /// [`Client::submit_tune_with_backoff`], additionally reporting how
    /// many [`NetError::Busy`] rejections were absorbed before admission —
    /// the backpressure signal a load generator wants to record.
    ///
    /// When the daemon's `Busy` carries a nonzero `retry_after_ms` hint, the
    /// wait honours it (capped at 4x the caller's `backoff` so a pessimistic
    /// daemon estimate cannot stall the client); otherwise the caller's
    /// `backoff` is used as-is.
    pub fn submit_tune_counting_backoff(
        &mut self,
        matrix: &CsrMatrix,
        device: &str,
        backoff: Duration,
        deadline: Duration,
    ) -> Result<(u64, u64), NetError> {
        let start = Instant::now();
        let mut rejections = 0u64;
        loop {
            match self.submit_tune(matrix, device) {
                Ok(job_id) => return Ok((job_id, rejections)),
                Err(NetError::Busy {
                    queue_capacity,
                    retry_after_ms,
                }) => {
                    rejections += 1;
                    if start.elapsed() >= deadline {
                        return Err(NetError::Busy {
                            queue_capacity,
                            retry_after_ms,
                        });
                    }
                    let hinted = Duration::from_millis(retry_after_ms);
                    let wait = if retry_after_ms > 0 {
                        hinted.min(backoff.saturating_mul(4)).max(backoff)
                    } else {
                        backoff
                    };
                    std::thread::sleep(wait);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Asks for a job's current state.
    pub fn poll_job(&mut self, job_id: u64) -> Result<JobState, NetError> {
        match self.roundtrip(&Request::PollJob { job_id })? {
            Response::Status {
                job_id: answered,
                state,
            } if answered == job_id => Ok(state),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Polls `job_id` every `poll_interval` until it is terminal, then
    /// returns its summary.  A failed job is [`NetError::JobFailed`]; a job
    /// the daemon no longer knows is an [`ErrorKind::UnknownJob`] server
    /// error; exceeding `deadline` is [`NetError::Timeout`].
    pub fn wait_job(
        &mut self,
        job_id: u64,
        poll_interval: Duration,
        deadline: Duration,
    ) -> Result<JobSummary, NetError> {
        let start = Instant::now();
        loop {
            match self.poll_job(job_id)? {
                JobState::Done(summary) => return Ok(summary),
                JobState::Failed { error } => return Err(NetError::JobFailed { job_id, error }),
                JobState::Unknown => {
                    return Err(NetError::Server {
                        kind: ErrorKind::UnknownJob,
                        message: format!("job {job_id} is unknown to the daemon"),
                    });
                }
                JobState::Queued | JobState::Running => {
                    if start.elapsed() >= deadline {
                        return Err(NetError::Timeout { job_id });
                    }
                    std::thread::sleep(poll_interval);
                }
            }
        }
    }

    /// Runs `y = A·x` remotely with a finished job's tuned kernel.  Under
    /// extreme load the daemon may shed the request with
    /// [`NetError::Busy`] (its execution lane is saturated) — nothing ran;
    /// retry after the hinted delay.
    pub fn spmv(&mut self, job_id: u64, x: &[Scalar]) -> Result<Vec<Scalar>, NetError> {
        match self.roundtrip(&Request::Spmv {
            job_id,
            x: x.to_vec(),
        })? {
            Response::SpmvResult { y } => Ok(y),
            Response::Busy {
                queue_capacity,
                retry_after_ms,
            } => Err(NetError::Busy {
                queue_capacity,
                retry_after_ms,
            }),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's store and job-table counters.
    pub fn store_stats(&mut self) -> Result<ServerStats, NetError> {
        match self.roundtrip(&Request::StoreStats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's per-tenant fairness accounting, sorted by
    /// tenant id.
    pub fn tenant_stats(&mut self) -> Result<Vec<TenantStats>, NetError> {
        match self.roundtrip(&Request::TenantStats)? {
            Response::Tenants(tenants) => Ok(tenants),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's full telemetry registry as a Prometheus text
    /// exposition — every counter, gauge and histogram the process has
    /// recorded, not just the curated [`ServerStats`] subset.  The same
    /// bytes are served over plain HTTP when the daemon was configured
    /// with a metrics address.
    pub fn metrics(&mut self) -> Result<String, NetError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::MetricsText { text } => Ok(text),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Asks the daemon to shut down cleanly.  Returns once the daemon
    /// acknowledged; pair with
    /// [`NetServer::join`](crate::NetServer::join) on the hosting side.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(NetError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}
