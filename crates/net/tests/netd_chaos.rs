//! Fault-injection soak of the event-loop daemon.
//!
//! Three weighted tenants tune a 20-matrix fleet while a chaos thread
//! attacks the same daemon: sockets killed mid-frame, writes stalled past
//! the slow-loris deadline, and socket-shutdown-then-reconnect storms.
//! The daemon must survive it all — every tenant's closed-loop work
//! completes, the terminal-job GC converges to its configured bound,
//! connection accounting returns to quiescent, no tenant is starved below
//! its fairness weight, and the shutdown is clean.

use alpha_matrix::gen;
use alpha_net::proto::{NET_MAGIC, PROTOCOL_VERSION};
use alpha_net::{Client, NetServer, ServerConfig};
use alpha_serve::{DesignStore, TuningService};
use alphasparse::SearchConfig;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

const POLL: Duration = Duration::from_millis(5);
const DEADLINE: Duration = Duration::from_secs(120);
const FLEET: usize = 20;
const TENANTS: u64 = 3;
const MAX_TERMINAL: usize = 16;
const FRAME_DEADLINE: Duration = Duration::from_millis(300);

/// One chaos round: three attack modes cycled by `round`.
fn chaos_round(addr: SocketAddr, round: u64) {
    match round % 3 {
        // Kill the socket mid-frame: a valid header promising more payload
        // than is ever sent, then vanish.
        0 => {
            if let Ok(mut raw) = TcpStream::connect(addr) {
                let _ = raw.write_all(&NET_MAGIC);
                let _ = raw.write_all(&PROTOCOL_VERSION.to_le_bytes());
                let _ = raw.write_all(&512u64.to_le_bytes());
                let _ = raw.write_all(&[0xAB; 37]);
                drop(raw);
            }
        }
        // Stall a write past the frame deadline: the slow-loris sweep must
        // reclaim the connection (we hold it open, silent, mid-frame).
        1 => {
            if let Ok(mut raw) = TcpStream::connect(addr) {
                let _ = raw.write_all(&NET_MAGIC);
                let _ = raw.write_all(&PROTOCOL_VERSION.to_le_bytes());
                let _ = raw.write_all(&64u64.to_le_bytes());
                let _ = raw.write_all(&[1u8; 8]);
                std::thread::sleep(FRAME_DEADLINE + Duration::from_millis(200));
                // By now the daemon should have torn us down; either way
                // the socket is dropped here.
            }
        }
        // Shutdown-then-reconnect storm: a burst of connections that each
        // half-open and immediately shut down both directions.
        _ => {
            for _ in 0..10 {
                if let Ok(raw) = TcpStream::connect(addr) {
                    let _ = raw.shutdown(Shutdown::Both);
                }
            }
        }
    }
}

#[test]
fn chaos_soak_survives_converges_and_starves_no_tenant() {
    let dir = std::env::temp_dir().join(format!("alpha_chaos_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = TuningService::new(
        DesignStore::open(&dir).expect("store opens"),
        SearchConfig {
            max_iterations: 6,
            mutations_per_seed: 2,
            ..SearchConfig::default()
        },
    );
    let server = NetServer::spawn(
        "127.0.0.1:0",
        service,
        ServerConfig {
            queue_capacity: 8,
            workers: 2,
            max_terminal_jobs: MAX_TERMINAL,
            shards: 4,
            frame_deadline: FRAME_DEADLINE,
            tenant_weights: vec![(1, 3), (2, 1), (3, 1)],
            metrics_addr: None,
            ..ServerConfig::default()
        },
    )
    .expect("daemon binds");
    let addr = server.local_addr();

    let stop_chaos = AtomicBool::new(false);
    let chaos_rounds = AtomicU64::new(0);
    let per_tenant = FLEET.div_ceil(TENANTS as usize);

    std::thread::scope(|scope| {
        // The chaos thread runs for as long as the tenants are working.
        let stop = &stop_chaos;
        let rounds = &chaos_rounds;
        scope.spawn(move || {
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                chaos_round(addr, round);
                round += 1;
                rounds.store(round, Ordering::Relaxed);
            }
        });

        // Three weighted tenants, each a closed loop over its fleet share.
        for tenant in 1..=TENANTS {
            scope.spawn(move || {
                let (mut client, weight) =
                    Client::connect_as(addr, tenant).expect("tenant connects");
                assert_eq!(
                    weight,
                    if tenant == 1 { 3 } else { 1 },
                    "the daemon must assign the configured weight"
                );
                for i in 0..per_tenant as u64 {
                    let matrix = gen::powerlaw(96, 96, 4, 2.0, 1_000 * tenant + i);
                    let job = client
                        .submit_tune_with_backoff(
                            &matrix,
                            "A100",
                            Duration::from_millis(2),
                            DEADLINE,
                        )
                        .expect("tenant work is admitted despite chaos");
                    client
                        .wait_job(job, POLL, DEADLINE)
                        .expect("tenant jobs finish despite chaos");
                    let y = client.spmv(job, &[1.0; 96]).expect("spmv despite chaos");
                    assert_eq!(y.len(), 96);
                }
            });
        }
        // The scope joins every thread on exit, so the chaos flag is
        // flipped from here once the tenants are done — detected by polling
        // the daemon's own terminal-job count.  The soak additionally stays
        // open until every attack mode has run at least three times, so
        // fast tuners cannot degenerate the chaos phase to a round or two.
        let expected = (per_tenant as u64) * TENANTS;
        let mut probe = Client::connect(addr).expect("probe connects");
        loop {
            let stats = probe.store_stats().expect("stats under chaos");
            if stats.jobs_completed + stats.jobs_failed >= expected
                && chaos_rounds.load(Ordering::Relaxed) >= 9
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        stop_chaos.store(true, Ordering::Relaxed);
    });

    // --- Post-soak invariants -------------------------------------------
    let mut client = Client::connect(addr).expect("daemon alive after soak");

    // Connection accounting returns to quiescent: the chaos sockets are all
    // dropped by now, but the reaper runs on the loop's tick, so give it a
    // bounded settle window before holding it to the invariant.
    let settle_deadline = std::time::Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let stats = client.store_stats().expect("stats after soak");
        if stats.open_connections <= 1 || std::time::Instant::now() >= settle_deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        stats.open_connections <= 2,
        "chaos connections must be reaped, open_connections={}",
        stats.open_connections
    );

    // Terminal-GC convergence: every job is terminal now, and the table
    // holds at most the configured retention window.
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(
        stats.jobs_completed + stats.jobs_failed,
        (per_tenant as u64) * TENANTS,
        "every admitted job must reach a terminal state"
    );
    assert!(
        stats.jobs_resident <= MAX_TERMINAL as u64,
        "terminal GC must converge to its bound, resident={}",
        stats.jobs_resident
    );
    assert_eq!(
        stats.jobs_gced,
        stats.jobs_completed + stats.jobs_failed - stats.jobs_resident,
        "GC accounting must balance"
    );

    // No tenant starved: all three tenants completed their full closed-loop
    // share (the per-client asserts above guarantee it; the daemon's own
    // ledger must agree), and fairness weights survived the soak.
    let tenants = client.tenant_stats().expect("tenant stats");
    for tenant in 1..=TENANTS {
        let entry = tenants
            .iter()
            .find(|t| t.client_id == tenant)
            .expect("tenant is in the ledger");
        assert_eq!(entry.weight, if tenant == 1 { 3 } else { 1 });
        assert_eq!(
            entry.completed, per_tenant as u64,
            "tenant {tenant} must complete its whole share"
        );
        assert_eq!(entry.queued, 0, "no tenant may hold phantom credits");
    }

    // And the daemon still shuts down cleanly.
    client.shutdown().expect("clean shutdown after soak");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The slow-loris deadline specifically: a connection holding a partial
/// frame beyond `frame_deadline` is closed by the sweeper even while the
/// daemon is otherwise idle, and a fresh connection still gets service.
#[test]
fn stalled_mid_frame_writer_is_reclaimed_by_the_deadline_sweep() {
    let dir = std::env::temp_dir().join(format!("alpha_loris_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = TuningService::new(
        DesignStore::open(&dir).expect("store opens"),
        SearchConfig {
            max_iterations: 4,
            ..SearchConfig::default()
        },
    );
    let server = NetServer::spawn(
        "127.0.0.1:0",
        service,
        ServerConfig {
            frame_deadline: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .expect("daemon binds");
    let addr = server.local_addr();

    let mut loris = TcpStream::connect(addr).expect("connects");
    loris
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    loris.write_all(&NET_MAGIC).unwrap();
    loris.write_all(&PROTOCOL_VERSION.to_le_bytes()).unwrap();
    loris.write_all(&1024u64.to_le_bytes()).unwrap();
    loris.write_all(&[9u8; 10]).unwrap();

    // Past the deadline the daemon tears the connection down; the read
    // observes the best-effort error frame and/or EOF, never a hang.
    std::thread::sleep(Duration::from_millis(500));
    let mut buf = [0u8; 256];
    let mut saw_close = false;
    for _ in 0..4 {
        match std::io::Read::read(&mut loris, &mut buf) {
            Ok(0) => {
                saw_close = true;
                break;
            }
            Ok(_) => continue, // The typed error frame drains first.
            Err(_) => {
                saw_close = true; // Reset counts as a close.
                break;
            }
        }
    }
    assert!(
        saw_close,
        "the sweeper must close a stalled mid-frame writer"
    );

    // The daemon is unharmed.
    let mut client = Client::connect(addr).expect("fresh connection works");
    let stats = client.store_stats().expect("stats after the loris");
    assert_eq!(stats.jobs_submitted, 0);
    client.shutdown().expect("clean shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
