//! Structured protocol fuzzing against a live daemon.
//!
//! A seeded corpus of valid frames is mutated — bit flips, length-field
//! tampering, truncation at every byte offset, duplicated frames,
//! interleaved partial frames across two connections — and thrown at the
//! event-loop server.  The daemon must answer every mutation with a typed
//! error or a clean close: never a panic, never a hang, and never a leaked
//! job-table entry (checked with `StoreStats` before/after).

use alpha_matrix::gen;
use alpha_net::proto::{
    decode_request_versioned, decode_response, encode_request_traced, read_frame, write_frame,
    Request, Response, MAX_FRAME_LEN, NET_MAGIC, PROTOCOL_VERSION,
};
use alpha_net::{Client, NetServer, ServerConfig};
use alpha_serve::{DesignStore, TuningService};
use alphasparse::SearchConfig;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const POLL: Duration = Duration::from_millis(5);
const DEADLINE: Duration = Duration::from_secs(120);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alpha_fuzz_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_daemon(dir: &PathBuf, config: ServerConfig) -> NetServer {
    let service = TuningService::new(
        DesignStore::open(dir).expect("store opens"),
        SearchConfig {
            max_iterations: 6,
            mutations_per_seed: 2,
            ..SearchConfig::default()
        },
    );
    NetServer::spawn("127.0.0.1:0", service, config).expect("daemon binds")
}

fn stop(server: NetServer, dir: &PathBuf) {
    let mut client = Client::connect(server.local_addr()).expect("connects for shutdown");
    client.shutdown().expect("daemon acknowledges shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(dir);
}

/// Deterministic xorshift64* stream for reproducible mutations.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Raw frame bytes (header + payload) for a request payload.
fn framed(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(16 + payload.len());
    write_frame(&mut bytes, payload).expect("corpus payloads fit the cap");
    bytes
}

/// The seeded corpus: one valid payload per request family the fuzzer may
/// mutate.  `Shutdown` is deliberately absent — it is a *valid* request,
/// and a mutant that happens to decode as one would end the daemon under
/// test rather than exercise its robustness.
fn corpus() -> Vec<Vec<u8>> {
    vec![
        encode_request_traced(0, &Request::StoreStats),
        encode_request_traced(0, &Request::TenantStats),
        encode_request_traced(0, &Request::Hello { client_id: 42 }),
        encode_request_traced(0, &Request::PollJob { job_id: 7 }),
        encode_request_traced(
            0,
            &Request::Spmv {
                job_id: 3,
                x: vec![1.0; 16],
            },
        ),
        encode_request_traced(
            0,
            &Request::SubmitTune {
                matrix: gen::uniform_random(24, 24, 3, 9),
                device: "TestGPU".to_string(),
            },
        ),
    ]
}

/// Sends raw bytes on a fresh connection and reads one frame back with a
/// timeout.  Returns the decoded response, or `None` for a clean
/// close/timeout-free error.  Panics only if the daemon wedges (read
/// timeout = the daemon neither answered nor closed).
fn probe(addr: SocketAddr, bytes: &[u8], expect_activity: bool) -> Option<Response> {
    let mut raw = TcpStream::connect(addr).expect("daemon accepts");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    if raw.write_all(bytes).is_err() {
        return None; // Daemon already closed on us mid-write: a clean close.
    }
    match read_frame(&mut raw) {
        Ok(payload) => Some(
            decode_response(&payload)
                .expect("whatever the daemon answers must decode as a valid response"),
        ),
        Err(e) => {
            if expect_activity {
                let msg = e.to_string();
                assert!(
                    !msg.contains("timed out") && !msg.contains("WouldBlock"),
                    "daemon neither answered nor closed: {msg}"
                );
            }
            None
        }
    }
}

#[test]
fn mutated_frames_yield_typed_errors_or_clean_closes_and_leak_nothing() {
    let dir = temp_dir("mutants");
    let server = spawn_daemon(&dir, ServerConfig::default());
    let addr = server.local_addr();
    let corpus = corpus();
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    let mut observed_submissions = 0u64;

    for round in 0..200u64 {
        let payload = &corpus[(round as usize) % corpus.len()];
        let mut mutated = payload.clone();
        for _ in 0..1 + rng.next() % 4 {
            let at = (rng.next() as usize) % mutated.len();
            mutated[at] ^= (rng.next() % 255 + 1) as u8;
        }
        // A mutant that decodes as a *valid* Shutdown would legitimately
        // stop the daemon — skip it; every other mutant is fair game.
        if matches!(
            decode_request_versioned(PROTOCOL_VERSION, &mutated),
            Ok((_, Request::Shutdown))
        ) {
            continue;
        }
        if let Some(response) = probe(addr, &framed(mutated.as_slice()), false) {
            match response {
                Response::Error { .. }
                | Response::Status { .. }
                | Response::Stats(_)
                | Response::Welcome { .. }
                | Response::Tenants(_)
                | Response::Busy { .. }
                | Response::MetricsText { .. }
                | Response::SpmvResult { .. } => {}
                Response::Submitted { .. } => observed_submissions += 1,
                Response::TraceSpans { .. } => {}
                Response::ShuttingDown => panic!("no mutant may shut the daemon down"),
            }
        }
    }

    // Every admitted mutant drains to a terminal record; nothing else may
    // survive in the job table.
    let mut client = Client::connect(addr).expect("daemon is alive after the fuzz");
    let stats = loop {
        let stats = client.store_stats().expect("stats after fuzz");
        if stats.queue_depth == 0 && stats.jobs_resident == stats.jobs_submitted {
            break stats;
        }
        std::thread::sleep(POLL);
    };
    assert_eq!(
        stats.jobs_submitted, observed_submissions,
        "the job table must track exactly the submissions the fuzzer saw admitted"
    );

    // And the daemon still does real work.
    let matrix = gen::powerlaw(96, 96, 4, 2.0, 5);
    let job = client.submit_tune(&matrix, "A100").expect("still admits");
    client.wait_job(job, POLL, DEADLINE).expect("still tunes");
    stop(server, &dir);
}

#[test]
fn truncation_at_every_byte_offset_leaks_nothing() {
    let dir = temp_dir("truncate");
    let server = spawn_daemon(&dir, ServerConfig::default());
    let addr = server.local_addr();
    let frame = framed(&encode_request_traced(
        0,
        &Request::SubmitTune {
            matrix: gen::uniform_random(8, 8, 2, 3),
            device: "TestGPU".to_string(),
        },
    ));

    // Cut the valid submission frame at every byte boundary and vanish:
    // 0 bytes (bare connect), mid-header, exactly-header, mid-payload,
    // one-short-of-complete.  None of these may admit a job.
    for offset in 0..frame.len() {
        let mut raw = TcpStream::connect(addr).expect("daemon accepts");
        raw.write_all(&frame[..offset]).expect("partial write");
        drop(raw);
    }

    let mut client = Client::connect(addr).expect("daemon alive after truncation storm");
    let stats = client.store_stats().expect("stats frame");
    assert_eq!(stats.jobs_submitted, 0, "no truncated frame may admit work");
    assert_eq!(stats.jobs_resident, 0, "no job-table entries may leak");
    assert_eq!(stats.queue_depth, 0);
    stop(server, &dir);
}

#[test]
fn length_field_tampering_gets_a_typed_error_or_clean_close() {
    let dir = temp_dir("lengths");
    let server = spawn_daemon(&dir, ServerConfig::default());
    let addr = server.local_addr();
    let payload = encode_request_traced(0, &Request::PollJob { job_id: 1 });

    // Claimed lengths the header can lie with: zero, short, long-but-legal,
    // over the cap, and absurd.  (A *smaller* length makes the daemon parse
    // the payload tail as a next header — framing lost, clean close; a
    // larger one leaves it waiting for bytes that never come — the
    // slow-loris deadline owns that case, so we just close.)
    let lies: [u64; 5] = [
        0,
        payload.len() as u64 - 1,
        payload.len() as u64 + 1,
        MAX_FRAME_LEN + 1,
        u64::MAX,
    ];
    for lie in lies {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&NET_MAGIC);
        bytes.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&lie.to_le_bytes());
        bytes.extend_from_slice(&payload);
        if let Some(response) = probe(addr, &bytes, false) {
            assert!(
                matches!(response, Response::Error { .. } | Response::Status { .. }),
                "a length lie of {lie} must answer a typed frame, got {response:?}"
            );
        }
    }

    let mut client = Client::connect(addr).expect("daemon alive after tampering");
    let stats = client.store_stats().expect("stats frame");
    assert_eq!(stats.jobs_submitted, 0);
    stop(server, &dir);
}

#[test]
fn duplicated_and_pipelined_frames_answer_in_order() {
    let dir = temp_dir("pipeline");
    let server = spawn_daemon(&dir, ServerConfig::default());
    let addr = server.local_addr();

    // Three frames in one write — a duplicated poll plus a stats request.
    // The event loop must answer all three, in order, on one connection.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut burst = Vec::new();
    burst.extend_from_slice(&framed(&encode_request_traced(
        0,
        &Request::PollJob { job_id: 9 },
    )));
    burst.extend_from_slice(&framed(&encode_request_traced(
        0,
        &Request::PollJob { job_id: 9 },
    )));
    burst.extend_from_slice(&framed(&encode_request_traced(0, &Request::StoreStats)));
    raw.write_all(&burst).unwrap();

    for expected_poll in [true, true, false] {
        let payload = read_frame(&mut raw).expect("pipelined response");
        let response = decode_response(&payload).expect("decodes");
        if expected_poll {
            assert!(
                matches!(response, Response::Status { job_id: 9, .. }),
                "expected a poll answer, got {response:?}"
            );
        } else {
            assert!(
                matches!(response, Response::Stats(_)),
                "expected stats, got {response:?}"
            );
        }
    }
    stop(server, &dir);
}

#[test]
fn interleaved_partial_frames_across_connections_stay_isolated() {
    let dir = temp_dir("interleave");
    let server = spawn_daemon(&dir, ServerConfig::default());
    let addr = server.local_addr();
    let frame_a = framed(&encode_request_traced(0, &Request::PollJob { job_id: 11 }));
    let frame_b = framed(&encode_request_traced(0, &Request::StoreStats));

    // A sends half a frame and stalls; B's complete frame must be answered
    // while A is mid-frame; then A finishes and gets its own answer.
    // Per-connection reassembly state must never bleed across sockets.
    let mut conn_a = TcpStream::connect(addr).unwrap();
    conn_a
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut conn_b = TcpStream::connect(addr).unwrap();
    conn_b
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let split = frame_a.len() / 2;
    conn_a.write_all(&frame_a[..split]).unwrap();

    conn_b.write_all(&frame_b).unwrap();
    let payload = read_frame(&mut conn_b).expect("B answered while A is mid-frame");
    assert!(matches!(
        decode_response(&payload).expect("decodes"),
        Response::Stats(_)
    ));

    conn_a.write_all(&frame_a[split..]).unwrap();
    let payload = read_frame(&mut conn_a).expect("A answered after completing its frame");
    assert!(matches!(
        decode_response(&payload).expect("decodes"),
        Response::Status { job_id: 11, .. }
    ));
    stop(server, &dir);
}
