//! Daemon-level tests: protocol robustness against a live socket, admission
//! control, job-table GC, cross-connection warm-store hits and clean
//! shutdown.

use alpha_matrix::gen;
use alpha_net::proto::{
    decode_response, encode_request_traced, read_frame, write_frame, Request, Response,
    MAX_FRAME_LEN, NET_MAGIC, PROTOCOL_VERSION,
};
use alpha_net::{Client, ErrorKind, JobState, NetError, NetServer, ServerConfig};
use alpha_serve::{DesignStore, TuningService};
use alphasparse::SearchConfig;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const POLL: Duration = Duration::from_millis(5);
const DEADLINE: Duration = Duration::from_secs(120);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alpha_net_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_daemon(dir: &PathBuf, config: ServerConfig) -> NetServer {
    let service = TuningService::new(
        DesignStore::open(dir).expect("store opens"),
        SearchConfig {
            max_iterations: 6,
            mutations_per_seed: 2,
            ..SearchConfig::default()
        },
    );
    NetServer::spawn("127.0.0.1:0", service, config).expect("daemon binds")
}

fn stop(server: NetServer, dir: &PathBuf) {
    let mut client = Client::connect(server.local_addr()).expect("connects for shutdown");
    client.shutdown().expect("daemon acknowledges shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn tune_poll_spmv_round_trip() {
    let dir = temp_dir("roundtrip");
    let server = quick_daemon(&dir, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let matrix = gen::powerlaw(160, 144, 4, 2.0, 11);
    let job = client.submit_tune(&matrix, "a100").expect("admitted");
    let summary = client.wait_job(job, POLL, DEADLINE).expect("tunes");
    assert!(summary.gflops > 0.0);
    assert!(!summary.operator_graph.is_empty());
    assert!(summary.fresh_evaluations > 0, "cold daemon must search");
    assert!(
        !summary.kernel_shape.is_empty() && summary.kernel_shape != "none",
        "summary must name the resident kernel's library shape, got {:?}",
        summary.kernel_shape
    );
    assert!(
        summary.specialized,
        "a designer-reachable winner must serve through the monomorphized \
         library, not the interpreted fallback (shape {:?})",
        summary.kernel_shape
    );

    let x: Vec<f32> = (0..144).map(|i| (i % 7) as f32 - 3.0).collect();
    let y = client.spmv(job, &x).expect("remote SpMV runs");
    let expected = matrix.spmv(&x).expect("reference SpMV");
    assert!(alpha_matrix::max_scaled_error(&y, expected.as_slice()) <= 1e-5);

    let stats = client.store_stats().expect("stats frame");
    assert_eq!(stats.jobs_submitted, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(
        stats.queue_capacity,
        ServerConfig::default().queue_capacity as u64
    );
    stop(server, &dir);
}

#[test]
fn typed_errors_for_bad_requests_leave_the_session_usable() {
    let dir = temp_dir("typed_errors");
    let server = quick_daemon(&dir, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    let matrix = gen::uniform_random(64, 64, 4, 3);

    // Unknown device.
    match client.submit_tune(&matrix, "H100") {
        Err(NetError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::UnknownDevice),
        other => panic!("expected UnknownDevice, got {other:?}"),
    }
    // Unknown job: poll reports Unknown, SpMV errors.
    assert_eq!(client.poll_job(999).unwrap(), JobState::Unknown);
    match client.spmv(999, &[0.0; 4]) {
        Err(NetError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::UnknownJob),
        other => panic!("expected UnknownJob, got {other:?}"),
    }
    // SpMV before the job is done / with the wrong dimension.
    let job = client.submit_tune(&matrix, "A100").unwrap();
    client.wait_job(job, POLL, DEADLINE).unwrap();
    match client.spmv(job, &[1.0; 63]) {
        Err(NetError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::InvalidInput),
        other => panic!("expected InvalidInput, got {other:?}"),
    }
    // The same session still serves valid work after every typed error.
    let y = client.spmv(job, &[1.0; 64]).expect("session survived");
    assert_eq!(y.len(), 64);
    stop(server, &dir);
}

#[test]
fn malformed_frames_never_kill_the_daemon() {
    let dir = temp_dir("robustness");
    let server = quick_daemon(&dir, ServerConfig::default());
    let addr = server.local_addr();

    // 1. Bad magic: the daemon answers a typed error frame, then closes.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"NOPE").unwrap();
        raw.write_all(&[0u8; 12]).unwrap();
        let payload = read_frame(&mut raw).expect("error frame comes back");
        match decode_response(&payload).unwrap() {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::BadFrame);
                assert!(message.contains("magic"), "got: {message}");
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }
    // 2. Version mismatch.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&NET_MAGIC).unwrap();
        raw.write_all(&(PROTOCOL_VERSION + 7).to_le_bytes())
            .unwrap();
        raw.write_all(&4u64.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 4]).unwrap();
        let payload = read_frame(&mut raw).expect("error frame comes back");
        assert!(matches!(
            decode_response(&payload).unwrap(),
            Response::Error {
                kind: ErrorKind::BadFrame,
                ..
            }
        ));
    }
    // 3. Oversized frame length: rejected before any allocation happens.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&NET_MAGIC).unwrap();
        raw.write_all(&PROTOCOL_VERSION.to_le_bytes()).unwrap();
        raw.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
        let payload = read_frame(&mut raw).expect("error frame comes back");
        match decode_response(&payload).unwrap() {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::BadFrame);
                assert!(message.contains("cap"), "got: {message}");
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }
    // 4. Truncated frame: write half a header and disappear.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&NET_MAGIC[..2]).unwrap();
        drop(raw);
    }
    // 5. Well-framed garbage payload: typed error, session stays alive.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        write_frame(&mut raw, &[250, 1, 2, 3]).unwrap();
        let payload = read_frame(&mut raw).expect("error frame comes back");
        assert!(matches!(
            decode_response(&payload).unwrap(),
            Response::Error {
                kind: ErrorKind::BadFrame,
                ..
            }
        ));
        // Same connection, now a valid request: the stream stayed in sync.
        write_frame(&mut raw, &encode_request_traced(0, &Request::StoreStats)).unwrap();
        let payload = read_frame(&mut raw).expect("stats frame");
        assert!(matches!(
            decode_response(&payload).unwrap(),
            Response::Stats(_)
        ));
    }
    // 6. Seeded fuzz over a real submission payload: the daemon must answer
    //    *something* typed (or close) for every mutation, and stay alive.
    {
        let valid = encode_request_traced(
            0,
            &Request::SubmitTune {
                matrix: gen::uniform_random(24, 24, 3, 9),
                device: "TestGPU".to_string(),
            },
        );
        let mut state = 0xDEADBEEFCAFEu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        for _ in 0..32 {
            let mut mutated = valid.clone();
            for _ in 0..1 + next() % 8 {
                let at = (next() as usize) % mutated.len();
                mutated[at] ^= (next() % 255 + 1) as u8;
            }
            let mut raw = TcpStream::connect(addr).unwrap();
            if write_frame(&mut raw, &mutated).is_err() {
                continue;
            }
            // Either a typed response or a clean close — never a hang (the
            // read would block forever if the daemon panicked mid-frame).
            raw.set_read_timeout(Some(Duration::from_secs(120)))
                .unwrap();
            if let Ok(payload) = read_frame(&mut raw) {
                let _ = decode_response(&payload);
            }
        }
    }

    // After all of the above, the daemon still tunes for a healthy client.
    let mut client = Client::connect(addr).unwrap();
    let matrix = gen::powerlaw(96, 96, 4, 2.0, 5);
    let job = client
        .submit_tune(&matrix, "A100")
        .expect("daemon survived");
    client.wait_job(job, POLL, DEADLINE).expect("still tunes");
    stop(server, &dir);
}

#[test]
fn full_queue_answers_busy_backpressure() {
    let dir = temp_dir("backpressure");
    // One worker, one queue slot: the third submission in a burst must see
    // Busy while the first is still tuning.
    let server = quick_daemon(
        &dir,
        ServerConfig {
            queue_capacity: 1,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Occupy the single worker with a deliberately heavy job, then burst
    // small ones: with one queue slot, the burst must hit Busy while the
    // heavy search runs — deterministically, not by racing the worker.
    let heavy = gen::powerlaw(8_192, 8_192, 8, 2.0, 77);
    let mut admitted = vec![client
        .submit_tune(&heavy, "A100")
        .expect("heavy job admitted")];
    let mut saw_busy = false;
    for i in 0..12u64 {
        let matrix = gen::powerlaw(256, 256, 6, 2.0, 100 + i);
        match client.submit_tune(&matrix, "A100") {
            Ok(job) => admitted.push(job),
            Err(NetError::Busy {
                queue_capacity,
                retry_after_ms: _,
            }) => {
                assert_eq!(queue_capacity, 1);
                saw_busy = true;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        saw_busy,
        "a 12-burst into a 1-slot queue behind a heavy job must hit Busy"
    );
    assert!(!admitted.is_empty(), "some submissions must be admitted");
    for job in &admitted {
        client
            .wait_job(*job, POLL, DEADLINE)
            .expect("admitted jobs finish");
    }
    // Backoff-retry admits a job once the queue drains.
    let matrix = gen::powerlaw(256, 256, 6, 2.0, 999);
    let job = client
        .submit_tune_with_backoff(&matrix, "A100", Duration::from_millis(5), DEADLINE)
        .expect("retry succeeds after drain");
    client.wait_job(job, POLL, DEADLINE).unwrap();
    let stats = client.store_stats().unwrap();
    assert!(stats.jobs_rejected > 0);
    assert_eq!(stats.jobs_completed, admitted.len() as u64 + 1);
    stop(server, &dir);
}

#[test]
fn terminal_jobs_are_garbage_collected_in_order() {
    let dir = temp_dir("gc");
    let server = quick_daemon(
        &dir,
        ServerConfig {
            max_terminal_jobs: 2,
            workers: 1,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut jobs = Vec::new();
    for i in 0..4u64 {
        let matrix = gen::powerlaw(128, 128, 4, 2.0, 200 + i);
        let job = client.submit_tune(&matrix, "A100").unwrap();
        client.wait_job(job, POLL, DEADLINE).unwrap();
        jobs.push(job);
    }
    // Only the 2 newest terminal records survive; the oldest were GC'd.
    assert_eq!(client.poll_job(jobs[0]).unwrap(), JobState::Unknown);
    assert_eq!(client.poll_job(jobs[1]).unwrap(), JobState::Unknown);
    assert!(matches!(
        client.poll_job(jobs[2]).unwrap(),
        JobState::Done(_)
    ));
    assert!(matches!(
        client.poll_job(jobs[3]).unwrap(),
        JobState::Done(_)
    ));
    let stats = client.store_stats().unwrap();
    assert_eq!(stats.jobs_gced, 2);
    stop(server, &dir);
}

#[test]
fn failed_jobs_report_their_error_and_do_not_serve_spmv() {
    let dir = temp_dir("failed");
    let server = quick_daemon(&dir, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();
    // An empty matrix is admitted (it is structurally valid CSR) but fails
    // tuning server-side.
    let empty = alpha_matrix::CsrMatrix::from_coo(&alpha_matrix::CooMatrix::new(8, 8));
    let job = client.submit_tune(&empty, "A100").unwrap();
    match client.wait_job(job, POLL, DEADLINE) {
        Err(NetError::JobFailed { job_id, error }) => {
            assert_eq!(job_id, job);
            assert!(!error.is_empty());
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
    match client.spmv(job, &[1.0; 8]) {
        Err(NetError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::JobNotReady),
        other => panic!("expected JobNotReady, got {other:?}"),
    }
    let stats = client.store_stats().unwrap();
    assert_eq!(stats.jobs_failed, 1);
    stop(server, &dir);
}

#[test]
fn warm_store_serves_a_second_connection_for_free() {
    let dir = temp_dir("warm");
    let server = quick_daemon(&dir, ServerConfig::default());
    let matrix = gen::powerlaw(192, 192, 5, 2.0, 77);

    let first = {
        let mut client = Client::connect(server.local_addr()).unwrap();
        let job = client.submit_tune(&matrix, "A100").unwrap();
        client.wait_job(job, POLL, DEADLINE).unwrap()
    };
    assert!(first.fresh_evaluations > 0);

    // A brand-new connection re-submitting the same matrix is answered from
    // the warm store: zero fresh evaluations, identical winner.
    let second = {
        let mut client = Client::connect(server.local_addr()).unwrap();
        let job = client.submit_tune(&matrix, "A100").unwrap();
        client.wait_job(job, POLL, DEADLINE).unwrap()
    };
    assert_eq!(second.fresh_evaluations, 0, "replay must be store-served");
    assert_eq!(second.operator_graph, first.operator_graph);
    assert_eq!(second.gflops, first.gflops);
    stop(server, &dir);
}

#[test]
fn shutdown_refuses_new_work_and_joins_cleanly() {
    let dir = temp_dir("shutdown");
    let server = quick_daemon(&dir, ServerConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let matrix = gen::powerlaw(96, 96, 4, 2.0, 31);
    let job = client.submit_tune(&matrix, "A100").unwrap();
    client.wait_job(job, POLL, DEADLINE).unwrap();

    let mut other = Client::connect(addr).unwrap();
    client.shutdown().expect("acknowledged");
    // The already-open second connection is refused new submissions.
    match other.submit_tune(&matrix, "A100") {
        Err(NetError::Server { kind, .. }) => assert_eq!(kind, ErrorKind::ShuttingDown),
        Err(NetError::Proto(_)) => {} // ...or the daemon already went away.
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
    drop(other);
    // Must terminate: accept loop, workers and every connection thread —
    // including the still-open `client` session, which the daemon closes on
    // its next idle poll.
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_tune_disjoint_fleets() {
    let dir = temp_dir("concurrent");
    let server = quick_daemon(&dir, ServerConfig::default());
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        for c in 0..2u64 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut jobs = Vec::new();
                for i in 0..3u64 {
                    let matrix = gen::powerlaw(160, 160, 4, 2.0, 1000 * (c + 1) + i);
                    jobs.push(
                        client
                            .submit_tune_with_backoff(
                                &matrix,
                                "A100",
                                Duration::from_millis(5),
                                DEADLINE,
                            )
                            .expect("admitted"),
                    );
                }
                for job in jobs {
                    client.wait_job(job, POLL, DEADLINE).expect("tunes");
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.jobs_submitted, 6);
    assert_eq!(stats.jobs_completed, 6);
    stop(server, &dir);
}

#[test]
fn raw_disconnect_mid_submission_does_not_leak_jobs() {
    let dir = temp_dir("disconnect");
    let server = quick_daemon(&dir, ServerConfig::default());
    // Open a connection, send half a frame, vanish.
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&NET_MAGIC).unwrap();
        raw.write_all(&PROTOCOL_VERSION.to_le_bytes()).unwrap();
        raw.write_all(&1024u64.to_le_bytes()).unwrap();
        raw.write_all(&[7u8; 100]).unwrap(); // 924 bytes short
        drop(raw);
    }
    // Nothing was admitted; the daemon is idle and healthy.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.store_stats().unwrap();
    assert_eq!(stats.jobs_submitted, 0);
    assert_eq!(stats.queue_depth, 0);
    stop(server, &dir);
}

#[test]
fn metrics_surface_covers_the_whole_pipeline() {
    let dir = temp_dir("metrics");
    let server = quick_daemon(
        &dir,
        ServerConfig {
            metrics_addr: Some("127.0.0.1:0".parse().unwrap()),
            ..ServerConfig::default()
        },
    );
    let metrics_addr = server.metrics_addr().expect("metrics endpoint bound");
    let (mut client, _) = Client::connect_as(server.local_addr(), 7).unwrap();

    let matrix = gen::powerlaw(128, 128, 4, 2.0, 21);
    let job = client.submit_tune(&matrix, "A100").expect("admitted");
    client.wait_job(job, POLL, DEADLINE).expect("tunes");
    let x = vec![1.0f32; 128];
    client.spmv(job, &x).expect("remote SpMV runs");

    // The wire request returns the full registry: daemon-level families,
    // tenant labels, and the serving/search/kernel layers underneath.
    let text = client.metrics().expect("metrics frame");
    for family in [
        "net_requests_total{tenant=\"7\"}",
        "net_tune_exec_us_count",
        "net_tune_queue_wait_us_count",
        "net_spmv_latency_us_count",
        "net_loop_tick_us_count",
        "net_deferred_depth",
        "serve_tune_latency_us_count",
        "serve_store_cold_starts_total",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
    // The kernel layer shares the same process-wide registry, so a
    // specialization miss anywhere in the tune→lower→serve pipeline would
    // surface here as `cpu_kernel_fallback_total`.  The family is created
    // on first increment; its absence means the whole pipeline ran
    // branch-free specialized loops.
    assert!(
        !text.contains("cpu_kernel_fallback_total"),
        "daemon pipeline hit the interpreted fallback:\n{text}"
    );

    // The HTTP endpoint serves the same exposition to a plain scraper.
    let scrape = |path: &str| -> String {
        let mut stream = TcpStream::connect(metrics_addr).expect("scraper connects");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .expect("request writes");
        let mut body = String::new();
        use std::io::Read;
        stream.read_to_string(&mut body).expect("response reads");
        body
    };
    let response = scrape("/metrics");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4\r\n"),
        "{response}"
    );
    assert!(response.contains("net_requests_total{tenant=\"7\"}"));
    assert!(response.contains("net_http_scrapes_total 1"));

    // Counters are monotone across scrapes, and wrong paths 404 without
    // disturbing the daemon.
    assert!(scrape("/nope").starts_with("HTTP/1.0 404 Not Found\r\n"));
    let again = scrape("/metrics");
    assert!(again.contains("net_http_scrapes_total 2"), "{again}");

    // The flight recorder dumps over the same endpoint, as JSON, and it
    // has seen this test's tune and SpMV lifecycles.
    let flightrec = scrape("/debug/flightrec");
    assert!(flightrec.starts_with("HTTP/1.0 200 OK\r\n"), "{flightrec}");
    assert!(
        flightrec.contains("Content-Type: application/json\r\n"),
        "{flightrec}"
    );
    for marker in ["\"admitted\"", "\"queue_pop\"", "\"exec_end\"", "\"reply\""] {
        assert!(flightrec.contains(marker), "missing {marker}:\n{flightrec}");
    }

    // Only GET is served: anything else on a known path is a 405 that
    // names the allowed method.
    let mut stream = TcpStream::connect(metrics_addr).expect("scraper connects");
    stream
        .write_all(b"POST /metrics HTTP/1.0\r\n\r\n")
        .expect("request writes");
    let mut body = String::new();
    {
        use std::io::Read;
        stream.read_to_string(&mut body).expect("response reads");
    }
    assert!(
        body.starts_with("HTTP/1.0 405 Method Not Allowed\r\n"),
        "{body}"
    );
    assert!(body.contains("Allow: GET\r\n"), "{body}");

    client.store_stats().expect("frame protocol still serves");
    stop(server, &dir);
}

#[test]
fn v4_clients_without_trace_envelopes_are_still_served() {
    let dir = temp_dir("v4compat");
    let server = quick_daemon(&dir, ServerConfig::default());

    // A v4 peer frames its payload bare — no trace-id prefix — and stamps
    // version 4.  The daemon must decode it as an untraced request and
    // stamp its reply with the peer's own version.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let payload = alpha_net::proto::encode_request(&Request::StoreStats);
    raw.write_all(&NET_MAGIC).unwrap();
    raw.write_all(&4u32.to_le_bytes()).unwrap();
    raw.write_all(&(payload.len() as u64).to_le_bytes())
        .unwrap();
    raw.write_all(&payload).unwrap();

    let mut header = [0u8; 16];
    {
        use std::io::Read;
        raw.read_exact(&mut header).expect("reply header");
    }
    assert_eq!(&header[..4], &NET_MAGIC, "reply magic");
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    assert_eq!(version, 4, "the reply must carry the v4 peer's version");
    let len = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let mut reply = vec![0u8; len];
    {
        use std::io::Read;
        raw.read_exact(&mut reply).expect("reply payload");
    }
    assert!(matches!(
        decode_response(&reply).expect("decodes"),
        Response::Stats(_)
    ));
    drop(raw);
    stop(server, &dir);
}
