//! `alpha-codegen` — the Format & Kernel Generator of the AlphaSparse
//! reproduction (paper Section V).
//!
//! Given the [`MatrixMetadataSet`] produced by
//! the Designer, this crate:
//!
//! * extracts the **machine-designed format** — the named index/value arrays
//!   of Figure 5 ([`format`](mod@format)),
//! * applies **Model-Driven Format Compression** — index arrays whose values
//!   follow a linear, step or periodic-linear law are replaced by the fitted
//!   function, eliminating their memory traffic ([`compress`](mod@compress)),
//! * builds the **generated kernel** — an executable
//!   [`SpmvKernel`](alpha_gpu::SpmvKernel)
//!   (interpreted by the `alpha-gpu` simulator) assembled from the kernel
//!   skeleton and the reduction fragments the implementing stage selected
//!   ([`kernel`], [`layout`]),
//! * emits CUDA-like **source code** for the kernel, the user-facing artifact
//!   of AlphaSparse ([`emit`]).

pub mod compress;
pub mod emit;
pub mod format;
pub mod kernel;
pub mod layout;

pub use compress::{compress_array, CompressionModel};
pub use format::{FormatArray, MachineFormat, PartitionFormat};
pub use kernel::GeneratedKernel;

use alpha_graph::{design, DesignError, MatrixMetadataSet, OperatorGraph};
use alpha_matrix::CsrMatrix;

/// Options controlling the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorOptions {
    /// Enable Model-Driven Format Compression (paper Section V-D).  Disabled
    /// only for the ablation of Figure 14c.
    pub model_compression: bool,
}

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            model_compression: true,
        }
    }
}

/// The complete output of the Format & Kernel Generator for one operator
/// graph and matrix: the executable kernel, the extracted format and the
/// emitted source.
pub struct GeneratedSpmv {
    /// Kernel runnable on the `alpha-gpu` simulator.
    pub kernel: GeneratedKernel,
    /// The machine-designed format description.
    pub format: MachineFormat,
    /// CUDA-like source code of the kernel.
    pub source: String,
    /// Rust source of the specialized loops the native CPU backend
    /// (`alpha-cpu`) executes for this design.
    pub rust_source: String,
}

/// Runs the Designer and the Format & Kernel Generator end to end.
pub fn generate(
    graph: &OperatorGraph,
    matrix: &CsrMatrix,
    options: GeneratorOptions,
) -> Result<GeneratedSpmv, DesignError> {
    let metadata = design(graph, matrix)?;
    Ok(generate_from_metadata(&metadata, options))
}

/// Builds the format, kernel and source from an already-designed metadata set.
pub fn generate_from_metadata(
    metadata: &MatrixMetadataSet,
    options: GeneratorOptions,
) -> GeneratedSpmv {
    let format = format::extract_format(metadata, options);
    let source = emit::emit_cuda(metadata, &format);
    let rust_source = emit::emit_rust(metadata, &format);
    let kernel =
        kernel::GeneratedKernel::new(metadata.clone(), &format).with_source(source.clone());
    GeneratedSpmv {
        kernel,
        format,
        source,
        rust_source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_gpu::{DeviceProfile, GpuSim, SpmvKernel};
    use alpha_graph::presets;
    use alpha_matrix::{gen, DenseVector};

    #[test]
    fn end_to_end_generation_produces_correct_spmv() {
        let matrix = gen::powerlaw(400, 400, 10, 2.0, 9);
        let x = DenseVector::random(400, 3);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        for (name, graph) in presets::all_presets() {
            let generated = generate(&graph, &matrix, GeneratorOptions::default())
                .unwrap_or_else(|e| panic!("{name}: generation failed: {e}"));
            let sim = GpuSim::new(DeviceProfile::test_profile());
            let result = sim
                .run(&generated.kernel, x.as_slice())
                .unwrap_or_else(|e| panic!("{name}: simulation failed: {e}"));
            assert!(
                DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
                "{name}: wrong SpMV result"
            );
            assert!(!generated.source.is_empty());
            assert!(generated.kernel.format_bytes() > 0);
        }
    }

    #[test]
    fn options_default_enables_compression() {
        assert!(GeneratorOptions::default().model_compression);
    }
}
