//! Model-Driven Format Compression (paper Section V-D, derived from
//! "Generating piecewise-regular code from irregular structures").
//!
//! Index arrays of a generated format are often *regular*: row offsets of a
//! padded format grow linearly, block offsets grow in steps, interleaved
//! layouts repeat a pattern per block.  Fitting such an array to a closed-form
//! model lets the kernel compute the value instead of loading it, removing
//! the array from memory entirely.  A small number of exceptions is tolerated
//! by storing `(index, value)` patch pairs, mirroring the paper's "if
//! statements for the specific array index the model cannot fit".

/// Maximum number of exceptions a model may need before compression is
/// rejected (relative to the array length).
const MAX_EXCEPTION_FRACTION: f64 = 0.02;

/// A fitted index model.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressionModel {
    /// `arr[i] = base + slope * i`.
    Linear {
        /// Value at index 0.
        base: i64,
        /// Increment per index.
        slope: i64,
    },
    /// `arr[i] = base + slope * (i / period)` (integer division): constant
    /// within each period, stepping between periods.
    Step {
        /// Value of the first step.
        base: i64,
        /// Increment per step.
        slope: i64,
        /// Number of consecutive indices sharing a value.
        period: usize,
    },
    /// `arr[i] = base + slope * (i / period) + residual[i % period]`: a linear
    /// trend per period plus a repeating intra-period pattern.
    PeriodicLinear {
        /// Value offset.
        base: i64,
        /// Increment per period.
        slope: i64,
        /// Period length.
        period: usize,
        /// Residual pattern within one period.
        residuals: Vec<i64>,
    },
}

/// A compressed array: the model plus the exceptional entries it cannot
/// reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedArray {
    /// The fitted model.
    pub model: CompressionModel,
    /// `(index, value)` pairs the model mispredicts.
    pub exceptions: Vec<(usize, u32)>,
}

impl CompressedArray {
    /// Evaluates the compressed representation at `i`.
    pub fn evaluate(&self, i: usize) -> u32 {
        if let Some(&(_, v)) = self.exceptions.iter().find(|&&(idx, _)| idx == i) {
            return v;
        }
        let predicted = match &self.model {
            CompressionModel::Linear { base, slope } => base + slope * i as i64,
            CompressionModel::Step {
                base,
                slope,
                period,
            } => base + slope * (i / period.max(&1).to_owned()) as i64,
            CompressionModel::PeriodicLinear {
                base,
                slope,
                period,
                residuals,
            } => {
                let p = (*period).max(1);
                base + slope * (i / p) as i64 + residuals[i % p]
            }
        };
        predicted.max(0) as u32
    }

    /// Bytes needed to represent the compressed array (model constants plus
    /// exception pairs); what remains in device memory after compression.
    pub fn compressed_bytes(&self) -> usize {
        let model_bytes = match &self.model {
            CompressionModel::Linear { .. } => 16,
            CompressionModel::Step { .. } => 24,
            CompressionModel::PeriodicLinear { residuals, .. } => 24 + residuals.len() * 8,
        };
        model_bytes + self.exceptions.len() * 8
    }
}

/// Attempts to compress an index array.  Returns `None` when no model fits
/// with an acceptable number of exceptions or when compression would not
/// actually save memory.
pub fn compress_array(data: &[u32]) -> Option<CompressedArray> {
    if data.len() < 4 {
        return None;
    }
    let max_exceptions = ((data.len() as f64 * MAX_EXCEPTION_FRACTION).ceil() as usize).max(1);
    let candidates = [
        fit_linear(data, max_exceptions),
        fit_step(data, max_exceptions),
        fit_periodic_linear(data, max_exceptions),
    ];
    let best = candidates
        .into_iter()
        .flatten()
        .min_by_key(|c| c.compressed_bytes())?;
    if best.compressed_bytes() >= data.len() * 4 {
        return None;
    }
    Some(best)
}

fn collect_exceptions(
    data: &[u32],
    max_exceptions: usize,
    predict: impl Fn(usize) -> i64,
) -> Option<Vec<(usize, u32)>> {
    let mut exceptions = Vec::new();
    for (i, &v) in data.iter().enumerate() {
        if predict(i) != v as i64 {
            exceptions.push((i, v));
            if exceptions.len() > max_exceptions {
                return None;
            }
        }
    }
    Some(exceptions)
}

fn fit_linear(data: &[u32], max_exceptions: usize) -> Option<CompressedArray> {
    let base = data[0] as i64;
    let slope = data[1] as i64 - base;
    let exceptions = collect_exceptions(data, max_exceptions, |i| base + slope * i as i64)?;
    Some(CompressedArray {
        model: CompressionModel::Linear { base, slope },
        exceptions,
    })
}

fn fit_step(data: &[u32], max_exceptions: usize) -> Option<CompressedArray> {
    // Find the run length of the first value as the period candidate.
    let period = data.iter().take_while(|&&v| v == data[0]).count().max(1);
    if period >= data.len() || period == 1 {
        return None;
    }
    let base = data[0] as i64;
    let slope = data[period] as i64 - base;
    let exceptions =
        collect_exceptions(data, max_exceptions, |i| base + slope * (i / period) as i64)?;
    Some(CompressedArray {
        model: CompressionModel::Step {
            base,
            slope,
            period,
        },
        exceptions,
    })
}

fn fit_periodic_linear(data: &[u32], max_exceptions: usize) -> Option<CompressedArray> {
    // Try small periods; a larger period would rarely pay off.
    for period in [2usize, 4, 8, 16, 32] {
        if data.len() < 2 * period {
            continue;
        }
        let base = 0i64;
        let slope = data[period] as i64 - data[0] as i64;
        let residuals: Vec<i64> = (0..period).map(|k| data[k] as i64).collect();
        let predict = |i: usize| base + slope * (i / period) as i64 + residuals[i % period];
        if let Some(exceptions) = collect_exceptions(data, max_exceptions, predict) {
            return Some(CompressedArray {
                model: CompressionModel::PeriodicLinear {
                    base,
                    slope,
                    period,
                    residuals,
                },
                exceptions,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u32]) -> CompressedArray {
        let c = compress_array(data).expect("array should compress");
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(c.evaluate(i), v, "mismatch at {i}");
        }
        c
    }

    #[test]
    fn linear_array_compresses() {
        let data: Vec<u32> = (0..1000).map(|i| 64 * i + 7).collect();
        let c = roundtrip(&data);
        assert!(matches!(
            c.model,
            CompressionModel::Linear { base: 7, slope: 64 }
        ));
        assert!(c.compressed_bytes() < data.len());
    }

    #[test]
    fn step_array_compresses() {
        let data: Vec<u32> = (0..800).map(|i| 100 + 32 * (i / 8) as u32).collect();
        let c = roundtrip(&data);
        assert!(matches!(c.model, CompressionModel::Step { period: 8, .. }));
    }

    #[test]
    fn periodic_array_compresses() {
        // Pattern [5, 9, 12, 20] repeated with +100 per period.
        let pattern = [5u32, 9, 12, 20];
        let data: Vec<u32> = (0..400)
            .map(|i| pattern[i % 4] + 100 * (i / 4) as u32)
            .collect();
        let c = roundtrip(&data);
        assert!(matches!(
            c.model,
            CompressionModel::PeriodicLinear { period: 4, .. }
        ));
    }

    #[test]
    fn few_exceptions_are_tolerated() {
        let mut data: Vec<u32> = (0..1000).map(|i| 4 * i).collect();
        data[500] = 13; // single irregular entry
        let c = roundtrip(&data);
        assert_eq!(c.exceptions.len(), 1);
        assert_eq!(c.evaluate(500), 13);
    }

    #[test]
    fn irregular_array_is_not_compressed() {
        // Pseudo-random values defeat every model.
        let data: Vec<u32> = (0..1000u32)
            .map(|i| i.wrapping_mul(2654435761) % 10_000)
            .collect();
        assert!(compress_array(&data).is_none());
    }

    #[test]
    fn tiny_arrays_are_not_compressed() {
        assert!(compress_array(&[1, 2, 3]).is_none());
    }

    #[test]
    fn compression_must_save_memory() {
        // A short array with many exceptions relative to its size.
        let data: Vec<u32> = vec![0, 4, 8, 12, 16, 20, 24, 28];
        if let Some(c) = compress_array(&data) {
            assert!(c.compressed_bytes() < data.len() * 4);
        }
    }
}
