//! The Kernel Builder: assembles an executable kernel from the kernel
//! skeleton and the reduction fragments chosen by the implementing stage
//! (paper Section V-C, Figures 6 and 7).
//!
//! The generated kernel implements [`SpmvKernel`], so the `alpha-gpu`
//! simulator both executes it (producing the actual `y = A·x`) and charges it
//! the costs its design implies: padded loads, interleaved (coalesced) versus
//! per-thread (uncoalesced) streaming, x gathers per row segment, shared
//! memory staging for the `SHMEM_*` reductions, warp shuffles, and atomics.

use crate::format::MachineFormat;
use crate::layout::{BlockDirectory, PartitionLayout};
use alpha_gpu::memory::Access;
use alpha_gpu::{BlockContext, DeviceProfile, LaunchConfig, SpmvKernel, WARP_SIZE};
use alpha_graph::{Mapping, MatrixMetadataSet, PartitionPlan};
use alpha_matrix::Scalar;

/// Per-partition execution state derived from the extracted format.
#[derive(Debug, Clone)]
struct PartitionExec {
    layout: PartitionLayout,
    origin_rows_compressed: bool,
    addressing_compressed: bool,
    row_starts_compressed: bool,
}

/// A machine-designed SpMV kernel generated from an operator graph.
pub struct GeneratedKernel {
    metadata: MatrixMetadataSet,
    execs: Vec<PartitionExec>,
    directory: BlockDirectory,
    format_bytes: usize,
    block_dim: usize,
    shared_mem_bytes: usize,
    name: String,
    source: Option<String>,
}

impl GeneratedKernel {
    /// Builds the kernel from the designed metadata and the extracted format.
    pub fn new(metadata: MatrixMetadataSet, format: &MachineFormat) -> Self {
        assert_eq!(
            metadata.partitions.len(),
            format.partitions.len(),
            "metadata and format must describe the same partitions"
        );
        let execs: Vec<PartitionExec> = metadata
            .partitions
            .iter()
            .zip(&format.partitions)
            .map(|(plan, pf)| {
                let addressing = if plan.padding.is_some() {
                    pf.is_array_compressed("bmt_nz_offsets")
                } else {
                    pf.is_array_compressed("row_offsets")
                };
                PartitionExec {
                    layout: pf.layout.clone(),
                    origin_rows_compressed: pf.is_array_compressed("origin_rows"),
                    addressing_compressed: addressing,
                    row_starts_compressed: pf.is_array_compressed("bmt_row_starts"),
                }
            })
            .collect();
        let directory =
            BlockDirectory::new(&execs.iter().map(|e| e.layout.blocks).collect::<Vec<_>>());
        let block_dim = execs
            .iter()
            .map(|e| e.layout.threads_per_block)
            .max()
            .unwrap_or(WARP_SIZE)
            .max(WARP_SIZE);
        let uses_shared = metadata
            .partitions
            .iter()
            .any(|p| p.reduction.block.is_some());
        let shared_mem_bytes = if uses_shared { block_dim * 8 } else { 0 };
        let name = format!(
            "alphasparse[{}]",
            metadata
                .partitions
                .first()
                .map(|p| p.describe())
                .unwrap_or_else(|| "empty".to_string())
        );
        GeneratedKernel {
            execs,
            directory,
            format_bytes: format.bytes(),
            block_dim,
            shared_mem_bytes,
            name,
            source: None,
            metadata,
        }
    }

    /// Attaches the emitted source so [`SpmvKernel::emit_source`] can expose it.
    pub fn with_source(mut self, source: String) -> Self {
        self.source = Some(source);
        self
    }

    /// The designed metadata this kernel was built from.
    pub fn metadata(&self) -> &MatrixMetadataSet {
        &self.metadata
    }

    /// Padding overhead: stored slots divided by real non-zeros.
    pub fn padding_ratio(&self) -> f64 {
        let padded: usize = self.execs.iter().map(|e| e.layout.padded_nnz).sum();
        if self.metadata.original_nnz == 0 {
            1.0
        } else {
            padded as f64 / self.metadata.original_nnz as f64
        }
    }

    // ---- execution paths ----------------------------------------------------

    fn exec_row_per_thread(
        &self,
        plan: &PartitionPlan,
        exec: &PartitionExec,
        rows_per_thread: usize,
        local_block: usize,
        ctx: &mut BlockContext<'_>,
    ) {
        let layout = &exec.layout;
        let rows = plan.matrix.rows();
        let rows_per_block = layout.rows_per_block;
        let first_row = local_block * rows_per_block;
        if first_row >= rows {
            return;
        }
        let last_row = (first_row + rows_per_block).min(rows);
        let threads_in_block = (last_row - first_row).div_ceil(rows_per_thread);
        let use_block_red = plan.reduction.block.is_some();
        let access = if plan.interleaved {
            Access::WarpCoalesced
        } else {
            Access::ThreadContiguous
        };
        let mut staged: Vec<(usize, Scalar)> = Vec::new();

        for t in 0..threads_in_block {
            let tid = t % layout.threads_per_block;
            ctx.thread(tid);
            let chunk_first = first_row + t * rows_per_thread;
            let chunk_last = (chunk_first + rows_per_thread).min(last_row);
            let chunk_index = chunk_first / rows_per_thread;
            let raw_len: usize = (chunk_first..chunk_last)
                .map(|r| plan.matrix.row_len(r))
                .sum();
            let padded_len = layout
                .padded_chunk_lens
                .get(chunk_index)
                .map(|&l| l as usize)
                .unwrap_or(raw_len)
                .max(raw_len);

            // Addressing metadata: chunk offset + size (or row offsets).
            if exec.addressing_compressed {
                ctx.alu(2);
            } else {
                ctx.load_matrix_stream(Access::WarpCoalesced, 2, 4);
            }
            // Value and column-index streams, including padding slots.
            if padded_len > 0 {
                ctx.load_matrix_stream(access, padded_len, 4);
                ctx.load_matrix_stream(access, padded_len, 4);
                ctx.mul_add(padded_len);
            }

            for row in chunk_first..chunk_last {
                let range = plan.matrix.row_range(row);
                if range.is_empty() {
                    continue;
                }
                let cols = &plan.matrix.col_indices()[range.clone()];
                ctx.gather_x_cost(cols);
                let mut acc = 0.0;
                for idx in range {
                    let col = plan.matrix.col_indices()[idx] as usize + plan.col_offset;
                    acc += plan.matrix.values()[idx] * ctx.x(col);
                }
                let orig = plan.origin_rows[row] as usize;
                if exec.origin_rows_compressed {
                    ctx.alu(1);
                } else {
                    ctx.load_matrix_stream(Access::WarpCoalesced, 1, 4);
                }
                if use_block_red {
                    // Stage the partial (value + row id) through shared memory.
                    ctx.shared_traffic(8);
                    staged.push((orig, acc));
                } else {
                    if plan.reduction.warp.is_some() {
                        // A warp-level reduction over a row-exclusive mapping
                        // is wasted work; charge it anyway.
                        ctx.warp_shuffle_reduce(WARP_SIZE);
                    }
                    if plan.reduction.global_atomic {
                        ctx.atomic_add_y(orig, acc);
                    } else {
                        ctx.store_y(orig, acc);
                    }
                }
            }
        }

        if use_block_red {
            ctx.syncthreads();
            for (i, (orig, acc)) in staged.into_iter().enumerate() {
                ctx.thread(i % layout.threads_per_block);
                ctx.shared_traffic(4);
                if plan.reduction.global_atomic {
                    ctx.atomic_add_y(orig, acc);
                } else {
                    ctx.store_y(orig, acc);
                }
            }
        }
    }

    fn exec_vector_per_row(
        &self,
        plan: &PartitionPlan,
        exec: &PartitionExec,
        threads_per_row: usize,
        local_block: usize,
        ctx: &mut BlockContext<'_>,
    ) {
        let layout = &exec.layout;
        let rows = plan.matrix.rows();
        let rows_per_block = layout.rows_per_block.max(1);
        let first_row = local_block * rows_per_block;
        if first_row >= rows {
            return;
        }
        let last_row = (first_row + rows_per_block).min(rows);
        let use_block_red = plan.reduction.block.is_some();
        let mut staged: Vec<(usize, Scalar)> = Vec::new();

        for (local_row, row) in (first_row..last_row).enumerate() {
            let range = plan.matrix.row_range(row);
            let row_len = range.len();
            let lead_tid = (local_row * threads_per_row) % layout.threads_per_block;
            ctx.thread(lead_tid);
            // Row offsets read by the leading lane of the group.
            if exec.addressing_compressed {
                ctx.alu(2);
            } else {
                ctx.load_matrix_stream(Access::WarpCoalesced, 2, 4);
            }
            if exec.origin_rows_compressed {
                ctx.alu(1);
            } else {
                ctx.load_matrix_stream(Access::WarpCoalesced, 1, 4);
            }
            let orig = plan.origin_rows[row] as usize;
            if row_len == 0 {
                continue;
            }
            let per_thread = row_len.div_ceil(threads_per_row);
            let mut partials: Vec<Scalar> = Vec::with_capacity(threads_per_row);
            for v in 0..threads_per_row {
                let seg_start = range.start + v * per_thread;
                if seg_start >= range.end {
                    break;
                }
                let seg_end = (seg_start + per_thread).min(range.end);
                let tid = (local_row * threads_per_row + v) % layout.threads_per_block;
                ctx.thread(tid);
                let seg_len = seg_end - seg_start;
                // The group streams the row cooperatively: coalesced.
                ctx.load_matrix_stream(Access::WarpCoalesced, seg_len, 4);
                ctx.load_matrix_stream(Access::WarpCoalesced, seg_len, 4);
                ctx.gather_x_cost(&plan.matrix.col_indices()[seg_start..seg_end]);
                let mut acc = 0.0;
                for idx in seg_start..seg_end {
                    let col = plan.matrix.col_indices()[idx] as usize + plan.col_offset;
                    acc += plan.matrix.values()[idx] * ctx.x(col);
                }
                ctx.mul_add(seg_len);
                partials.push(acc);
            }

            ctx.thread(lead_tid);
            if let Some(_warp) = plan.reduction.warp {
                ctx.warp_shuffle_reduce(threads_per_row.max(2));
                let total: Scalar = partials.iter().sum();
                if plan.reduction.global_atomic {
                    ctx.atomic_add_y(orig, total);
                } else {
                    ctx.store_y(orig, total);
                }
            } else if use_block_red {
                ctx.shared_traffic(partials.len() * 8);
                staged.push((orig, partials.iter().sum()));
            } else {
                // Only global atomics can combine the partials.
                for p in partials {
                    ctx.atomic_add_y(orig, p);
                }
            }
        }

        if use_block_red {
            ctx.syncthreads();
            for (i, (orig, acc)) in staged.into_iter().enumerate() {
                ctx.thread(i % layout.threads_per_block);
                ctx.shared_traffic(4);
                if plan.reduction.global_atomic {
                    ctx.atomic_add_y(orig, acc);
                } else {
                    ctx.store_y(orig, acc);
                }
            }
        }
    }

    fn exec_nnz_split(
        &self,
        plan: &PartitionPlan,
        exec: &PartitionExec,
        nnz_per_thread: usize,
        local_block: usize,
        ctx: &mut BlockContext<'_>,
    ) {
        let layout = &exec.layout;
        let nnz = plan.matrix.nnz();
        let offsets = plan.matrix.row_offsets();
        let first_thread = local_block * layout.threads_per_block;

        for t in 0..layout.threads_per_block {
            let global_thread = first_thread + t;
            let start = global_thread * nnz_per_thread;
            if start >= nnz {
                break;
            }
            let end = (start + nnz_per_thread).min(nnz);
            let len = end - start;
            ctx.thread(t);

            // Value and column streams: adjacent threads read adjacent tiles,
            // effectively coalesced (the CSR5 / merge layout).
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.load_matrix_stream(Access::WarpCoalesced, len, 4);
            ctx.mul_add(len);
            // Per-chunk row-start descriptor.
            if exec.row_starts_compressed {
                ctx.alu(1);
            } else {
                ctx.load_matrix_stream(Access::WarpCoalesced, 1, 4);
            }

            // Find the first row of this chunk.
            let mut row = match offsets.binary_search(&(start as u32)) {
                Ok(r) => r.min(plan.matrix.rows().saturating_sub(1)),
                Err(r) => r.saturating_sub(1),
            };
            ctx.alu((plan.matrix.rows().max(2) as f64).log2() as usize + 1);

            let mut cursor = start;
            let mut rows_touched = 0usize;
            while cursor < end {
                let row_end = offsets[row + 1] as usize;
                let seg_end = row_end.min(end);
                let seg_len = seg_end - cursor;
                if seg_len > 0 {
                    ctx.gather_x_cost(&plan.matrix.col_indices()[cursor..seg_end]);
                    let mut acc = 0.0;
                    for idx in cursor..seg_end {
                        let col = plan.matrix.col_indices()[idx] as usize + plan.col_offset;
                        acc += plan.matrix.values()[idx] * ctx.x(col);
                    }
                    // Bitmap bookkeeping for the row boundary walk.
                    ctx.alu(seg_len);
                    if exec.origin_rows_compressed {
                        ctx.alu(1);
                    } else {
                        ctx.load_matrix_stream(Access::WarpCoalesced, 1, 4);
                    }
                    let orig = plan.origin_rows[row] as usize;
                    let starts_mid_row = cursor == start && start != offsets[row] as usize;
                    let ends_mid_row = seg_end == end && seg_end != row_end;
                    let boundary = starts_mid_row || ends_mid_row;
                    if boundary {
                        if plan.reduction.warp.is_some() {
                            // Boundary partials merged with the neighbouring
                            // lane by the warp-level segmented sum.
                            ctx.warp_shuffle_reduce(2);
                            ctx.store_y(orig, acc);
                        } else {
                            ctx.atomic_add_y(orig, acc);
                        }
                    } else {
                        ctx.store_y(orig, acc);
                    }
                    rows_touched += 1;
                }
                cursor = seg_end;
                row += 1;
            }
            // Row offsets covering the touched rows.
            if exec.addressing_compressed {
                ctx.alu(rows_touched + 1);
            } else {
                ctx.load_matrix_stream(Access::WarpCoalesced, rows_touched + 1, 4);
            }
        }
    }
}

impl SpmvKernel for GeneratedKernel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn launch_config(&self, _device: &DeviceProfile) -> LaunchConfig {
        LaunchConfig::with_shared_mem(
            self.directory.total_blocks().max(1),
            self.block_dim,
            self.shared_mem_bytes,
        )
    }

    fn execute_block(&self, block_id: usize, ctx: &mut BlockContext<'_>) {
        let Some((partition, local_block)) = self.directory.locate(block_id) else {
            return;
        };
        let plan = &self.metadata.partitions[partition];
        let exec = &self.execs[partition];
        match plan.mapping {
            Mapping::RowPerThread { rows_per_thread } => {
                self.exec_row_per_thread(plan, exec, rows_per_thread.max(1), local_block, ctx)
            }
            Mapping::VectorPerRow { threads_per_row } => {
                self.exec_vector_per_row(plan, exec, threads_per_row.max(1), local_block, ctx)
            }
            Mapping::NnzSplit { nnz_per_thread } => {
                self.exec_nnz_split(plan, exec, nnz_per_thread.max(1), local_block, ctx)
            }
        }
    }

    fn format_bytes(&self) -> usize {
        self.format_bytes
    }

    fn useful_flops(&self) -> u64 {
        2 * self.metadata.original_nnz as u64
    }

    fn output_rows(&self) -> usize {
        self.metadata.original_rows
    }

    fn input_cols(&self) -> usize {
        self.metadata.original_cols
    }

    fn emit_source(&self) -> Option<String> {
        self.source.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorOptions};
    use alpha_gpu::GpuSim;
    use alpha_graph::presets;
    use alpha_matrix::{gen, DenseVector};

    fn check_graph(graph: &alpha_graph::OperatorGraph, matrix: &alpha_matrix::CsrMatrix) {
        let x = DenseVector::random(matrix.cols(), 7);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        let generated = generate(graph, matrix, GeneratorOptions::default()).unwrap();
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let result = sim.run(&generated.kernel, x.as_slice()).unwrap();
        assert!(
            DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
            "incorrect result for {}",
            generated.kernel.name()
        );
    }

    #[test]
    fn every_preset_is_correct_on_every_pattern_family() {
        for family in alpha_matrix::gen::PatternFamily::ALL {
            let matrix = family.generate(256, 6, 21);
            for (_, graph) in presets::all_presets() {
                check_graph(&graph, &matrix);
            }
        }
    }

    #[test]
    fn column_split_design_is_correct() {
        let matrix = gen::uniform_random(200, 200, 12, 3);
        check_graph(&presets::col_split_atomic(2), &matrix);
    }

    #[test]
    fn interleaved_padded_design_beats_unpadded_scalar_on_regular_matrix() {
        // SELL-style coalesced access should model faster than CSR-scalar's
        // per-thread strided access on a regular matrix.
        let matrix = gen::uniform_random(8_192, 8_192, 16, 5);
        let x = DenseVector::ones(8_192);
        let sim = GpuSim::new(DeviceProfile::a100());
        let scalar =
            generate(&presets::csr_scalar(), &matrix, GeneratorOptions::default()).unwrap();
        let sell = generate(&presets::sell_like(), &matrix, GeneratorOptions::default()).unwrap();
        let scalar_perf = sim.run(&scalar.kernel, x.as_slice()).unwrap().report;
        let sell_perf = sim.run(&sell.kernel, x.as_slice()).unwrap().report;
        assert!(
            sell_perf.gflops > scalar_perf.gflops,
            "SELL-like {} should beat CSR-scalar {}",
            sell_perf.gflops,
            scalar_perf.gflops
        );
    }

    #[test]
    fn nnz_split_design_wins_on_irregular_matrix() {
        // Load-balanced nnz splitting should model faster than row-per-thread
        // on a heavy-tailed matrix (the CSR5/merge advantage).
        let matrix = gen::powerlaw(8_192, 8_192, 16, 1.8, 9);
        let x = DenseVector::ones(8_192);
        let sim = GpuSim::new(DeviceProfile::a100());
        let scalar =
            generate(&presets::csr_scalar(), &matrix, GeneratorOptions::default()).unwrap();
        let csr5 = generate(
            &presets::csr5_like(16),
            &matrix,
            GeneratorOptions::default(),
        )
        .unwrap();
        let scalar_perf = sim.run(&scalar.kernel, x.as_slice()).unwrap().report;
        let csr5_perf = sim.run(&csr5.kernel, x.as_slice()).unwrap().report;
        assert!(
            csr5_perf.gflops > scalar_perf.gflops,
            "nnz-split {} should beat CSR-scalar {} on irregular data",
            csr5_perf.gflops,
            scalar_perf.gflops
        );
    }

    #[test]
    fn padding_ratio_reflects_padding_operators() {
        let matrix = gen::powerlaw(512, 512, 8, 2.0, 3);
        let padded = generate(&presets::sell_like(), &matrix, GeneratorOptions::default()).unwrap();
        let plain = generate(&presets::csr_scalar(), &matrix, GeneratorOptions::default()).unwrap();
        assert!(padded.kernel.padding_ratio() >= 1.0);
        assert!((plain.kernel.padding_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn launch_config_respects_device_limits() {
        let matrix = gen::uniform_random(1_000, 1_000, 8, 1);
        for (name, graph) in presets::all_presets() {
            let generated = generate(&graph, &matrix, GeneratorOptions::default()).unwrap();
            let device = DeviceProfile::a100();
            let lc = generated.kernel.launch_config(&device);
            assert!(
                lc.validate(&device).is_ok(),
                "{name}: {:?}",
                lc.validate(&device)
            );
        }
    }

    #[test]
    fn model_compression_reduces_format_bytes_and_stays_correct() {
        let matrix = gen::uniform_random(2_048, 2_048, 8, 11);
        let x = DenseVector::random(2_048, 2);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        let on = generate(
            &presets::sell_sigma_like(32),
            &matrix,
            GeneratorOptions {
                model_compression: true,
            },
        )
        .unwrap();
        let off = generate(
            &presets::sell_sigma_like(32),
            &matrix,
            GeneratorOptions {
                model_compression: false,
            },
        )
        .unwrap();
        assert!(on.kernel.format_bytes() <= off.kernel.format_bytes());
        let sim = GpuSim::new(DeviceProfile::a100());
        let ron = sim.run(&on.kernel, x.as_slice()).unwrap();
        let roff = sim.run(&off.kernel, x.as_slice()).unwrap();
        assert!(DenseVector::from_vec(ron.y.clone()).approx_eq(&expected, 1e-3));
        assert!(DenseVector::from_vec(roff.y.clone()).approx_eq(&expected, 1e-3));
        // Compression never hurts the modelled performance.
        assert!(ron.report.gflops >= roff.report.gflops * 0.999);
    }
}
