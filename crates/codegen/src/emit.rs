//! CUDA-like source emission.
//!
//! AlphaSparse's user-facing output is generated CUDA code (the paper's
//! Figure 7).  The simulator does not compile this text — it interprets the
//! structured kernel directly — but the emitted source preserves the
//! "output is code" property: it documents the machine-designed format's
//! arrays, the loop skeleton over thread blocks / warps / threads, the chosen
//! reduction fragments, and which index arrays Model-Driven Format
//! Compression replaced with closed-form expressions.

use crate::compress::CompressionModel;
use crate::format::{MachineFormat, PartitionFormat};
use alpha_graph::{
    BlockReduction, Mapping, MatrixMetadataSet, PartitionPlan, SimdLaneMapping, ThreadReduction,
    WarpReduction,
};

/// Emits CUDA-like source for the whole generated SpMV program.
pub fn emit_cuda(metadata: &MatrixMetadataSet, format: &MachineFormat) -> String {
    let mut out = String::new();
    out.push_str("// Machine-generated SpMV program (AlphaSparse reproduction)\n");
    out.push_str(&format!(
        "// matrix: {} rows x {} cols, {} non-zeros, {} partition(s)\n\n",
        metadata.original_rows,
        metadata.original_cols,
        metadata.original_nnz,
        metadata.partitions.len()
    ));
    for (i, (plan, pf)) in metadata
        .partitions
        .iter()
        .zip(&format.partitions)
        .enumerate()
    {
        out.push_str(&emit_partition(i, plan, pf));
        out.push('\n');
    }
    out.push_str(&emit_host_launcher(metadata, format));
    out
}

fn emit_partition(index: usize, plan: &PartitionPlan, pf: &PartitionFormat) -> String {
    let mut out = String::new();
    out.push_str(&format!("// ---- partition {index} ----\n"));
    out.push_str(&format!("// operator graph: {}\n", plan.describe()));
    out.push_str("// format arrays:\n");
    for array in &pf.arrays {
        match &array.compressed {
            Some(c) => out.push_str(&format!(
                "//   {:<18} compressed: {}\n",
                array.name,
                describe_model(&c.model, c.exceptions.len())
            )),
            None => out.push_str(&format!(
                "//   {:<18} u32[{}]\n",
                array.name,
                array.data.len()
            )),
        }
    }
    out.push_str(&format!(
        "//   values             f32[{0}], col_indices u32[{0}] (padded)\n",
        pf.padded_nnz
    ));

    out.push_str(&format!(
        "__global__ void alphasparse_partition_{index}(const float* __restrict__ values,\n\
         \x20                                        const unsigned* __restrict__ col_indices,\n\
         \x20                                        const float* __restrict__ x,\n\
         \x20                                        float* y) {{\n"
    ));
    out.push_str(&format!(
        "  // SET_RESOURCES: {} threads per block, {} blocks\n",
        pf.layout.threads_per_block, pf.layout.blocks
    ));
    match plan.mapping {
        Mapping::RowPerThread { rows_per_thread } => {
            out.push_str(&format!(
                "  // BMT_ROW_BLOCK: each thread owns {rows_per_thread} row(s); \
                 {} storage\n",
                if plan.interleaved {
                    "interleaved (column-major per block)"
                } else {
                    "row-major"
                }
            ));
            out.push_str("  for (int bmtb = blockIdx.x; ; bmtb += gridDim.x) {\n");
            out.push_str("    int bmt = bmtb * blockDim.x + threadIdx.x;\n");
            out.push_str(&emit_addressing(pf, "    "));
            out.push_str("    float partial[ROWS_PER_THREAD];\n");
            out.push_str("    for (int k = 0; k < bmt_size; ++k) {\n");
            out.push_str(&format!(
                "      int idx = {};\n",
                if plan.interleaved {
                    "bmtb_base + k * blockDim.x + threadIdx.x"
                } else {
                    "bmt_offset + k"
                }
            ));
            out.push_str("      partial[row_of(k)] += values[idx] * x[col_indices[idx]];\n");
            out.push_str("    }\n");
        }
        Mapping::VectorPerRow { threads_per_row } => {
            out.push_str(&format!(
                "  // BMT_COL_BLOCK: {threads_per_row} threads cooperate on each row\n"
            ));
            out.push_str("  int lane = threadIdx.x % THREADS_PER_ROW;\n");
            out.push_str(
                "  int row  = (blockIdx.x * blockDim.x + threadIdx.x) / THREADS_PER_ROW;\n",
            );
            out.push_str(&emit_addressing(pf, "  "));
            out.push_str("  float partial = 0.f;\n");
            out.push_str(
                "  for (int idx = row_start + lane; idx < row_end; idx += THREADS_PER_ROW)\n",
            );
            out.push_str("    partial += values[idx] * x[col_indices[idx]];\n");
        }
        Mapping::NnzSplit { nnz_per_thread } => {
            out.push_str(&format!(
                "  // BMT_NNZ_BLOCK: each thread owns {nnz_per_thread} consecutive non-zeros\n"
            ));
            out.push_str(
                "  int first_nz = (blockIdx.x * blockDim.x + threadIdx.x) * NNZ_PER_THREAD;\n",
            );
            out.push_str(&emit_addressing(pf, "  "));
            out.push_str("  int row = bmt_row_starts[thread_id];\n");
            out.push_str("  float partial = 0.f;\n");
            out.push_str("  for (int idx = first_nz; idx < first_nz + NNZ_PER_THREAD; ++idx) {\n");
            out.push_str("    partial += values[idx] * x[col_indices[idx]];\n");
            out.push_str("    // THREAD_BITMAP_RED: emit partial at each row boundary\n");
            out.push_str("    if (idx + 1 == row_offsets[row + 1]) { flush(partial, row++); }\n");
            out.push_str("  }\n");
        }
    }
    out.push_str(&emit_reduction(plan));
    out.push_str("}\n");
    out
}

fn emit_addressing(pf: &PartitionFormat, indent: &str) -> String {
    let mut out = String::new();
    for array in &pf.arrays {
        let line = match &array.compressed {
            Some(c) => format!(
                "{indent}// {} eliminated by Model-Driven Format Compression: {}\n",
                array.name,
                describe_model(&c.model, c.exceptions.len())
            ),
            None => format!("{indent}// load {} from global memory\n", array.name),
        };
        out.push_str(&line);
    }
    out
}

fn emit_reduction(plan: &PartitionPlan) -> String {
    let mut out = String::new();
    match plan.reduction.thread {
        ThreadReduction::Total => {
            out.push_str("  // THREAD_TOTAL_RED: accumulate the thread's chunk in a register\n");
        }
        ThreadReduction::Bitmap => {
            out.push_str(
                "  // THREAD_BITMAP_RED: per-row partials tracked with a boundary bitmap\n",
            );
        }
    }
    match plan.reduction.warp {
        Some(WarpReduction::Total) => {
            out.push_str("  partial = warp_reduce_sum(partial);            // WARP_TOTAL_RED\n");
        }
        Some(WarpReduction::Bitmap) => {
            out.push_str("  partial = warp_bitmap_reduce(partial, bitmap); // WARP_BITMAP_RED\n");
        }
        Some(WarpReduction::Segmented) => {
            out.push_str("  partial = warp_segmented_sum(partial, flags);  // WARP_SEG_RED\n");
        }
        None => {}
    }
    match plan.reduction.block {
        Some(BlockReduction::SharedOffset) => {
            out.push_str(
                "  // SHMEM_OFFSET_RED (adapter copies register partials into shared memory)\n\
                 \x20 shared_partials[threadIdx.x] = partial; __syncthreads();\n\
                 \x20 reduce_rows_by_offset(shared_partials, row_offsets_in_block);\n",
            );
        }
        Some(BlockReduction::SharedTotal) => {
            out.push_str(
                "  shared_partials[threadIdx.x] = partial; __syncthreads();\n\
                 \x20 block_total = block_reduce_sum(shared_partials); // SHMEM_TOTAL_RED\n",
            );
        }
        None => {}
    }
    if plan.reduction.global_atomic {
        out.push_str("  atomicAdd(&y[origin_rows[row]], partial);        // GMEM_ATOM_RED\n");
    } else {
        out.push_str("  y[origin_rows[row]] = partial;                   // direct store\n");
    }
    out
}

fn emit_host_launcher(metadata: &MatrixMetadataSet, format: &MachineFormat) -> String {
    let mut out = String::new();
    out.push_str("// ---- host launcher ----\n");
    out.push_str("void alphasparse_spmv(const float* x, float* y) {\n");
    for (i, pf) in format.partitions.iter().enumerate() {
        out.push_str(&format!(
            "  alphasparse_partition_{i}<<<{}, {}>>>(values_{i}, col_indices_{i}, x, y);\n",
            pf.layout.blocks, pf.layout.threads_per_block
        ));
    }
    out.push_str(&format!(
        "  // total format footprint: {} bytes for {} stored non-zeros\n",
        format.bytes(),
        metadata.original_nnz
    ));
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Rust source emission (the native CPU backend's artifact)
// ---------------------------------------------------------------------------

/// Emits Rust source for the whole generated SpMV program: the exact
/// specialized row/nnz-partition loops `alpha-cpu`'s `NativeKernel` executes,
/// with compressed index arrays appearing as inline closed-form expressions
/// instead of loads.  Like [`emit_cuda`], this is the user-facing artifact —
/// the native backend interprets the same structure directly.
pub fn emit_rust(metadata: &MatrixMetadataSet, format: &MachineFormat) -> String {
    let mut out = String::new();
    out.push_str(
        "// Machine-generated SpMV program (AlphaSparse reproduction, native CPU backend)\n",
    );
    out.push_str(&format!(
        "// matrix: {} rows x {} cols, {} non-zeros, {} partition(s)\n",
        metadata.original_rows,
        metadata.original_cols,
        metadata.original_nnz,
        metadata.partitions.len()
    ));
    out.push_str("// `y` must be zeroed by the caller; partitions accumulate into it.\n");
    out.push_str("pub fn alphasparse_spmv(x: &[f32], y: &mut [f32]) {\n");
    for (i, (plan, pf)) in metadata
        .partitions
        .iter()
        .zip(&format.partitions)
        .enumerate()
    {
        out.push_str(&emit_rust_partition(i, plan, pf));
    }
    out.push_str("}\n");
    out
}

/// The Rust expression reading entry `var` of a format array: an index load
/// for stored arrays, the fitted model inlined as arithmetic for compressed
/// ones (Model-Driven Format Compression executed for real).
fn rust_index_expr(pf: &PartitionFormat, name: &str, var: &str) -> String {
    let Some(array) = pf.array(name) else {
        return format!("{name}[{var}] as usize");
    };
    let Some(c) = &array.compressed else {
        return format!("{name}[{var}] as usize");
    };
    let patched = if c.exceptions.is_empty() {
        String::new()
    } else {
        format!(" /* {} patched exception(s) */", c.exceptions.len())
    };
    let expr = match &c.model {
        CompressionModel::Linear { base: 0, slope: 1 } => var.to_string(),
        CompressionModel::Linear { base: 0, slope } => format!("{slope} * {var}"),
        CompressionModel::Linear { base, slope } => {
            format!("({base} + {slope} * {var} as i64) as usize")
        }
        CompressionModel::Step {
            base,
            slope,
            period,
        } => format!("({base} + {slope} * ({var} / {period}) as i64) as usize"),
        CompressionModel::PeriodicLinear { slope, period, .. } => format!(
            "{name}_pattern[{var} % {period}] + ({slope} * ({var} / {period}) as i64) as usize"
        ),
    };
    format!("{expr}{patched}")
}

fn emit_rust_partition(index: usize, plan: &PartitionPlan, pf: &PartitionFormat) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "    // ---- partition {index}: {} ----\n",
        plan.describe()
    ));
    for array in &pf.arrays {
        match &array.compressed {
            Some(c) => out.push_str(&format!(
                "    //   {:<16} closed form: {} (no load)\n",
                array.name,
                describe_model(&c.model, c.exceptions.len())
            )),
            None => out.push_str(&format!(
                "    //   {:<16} u32[{}] (loaded)\n",
                array.name,
                array.data.len()
            )),
        }
    }
    out.push_str(&format!(
        "    //   values_{index} f32[{0}], col_indices_{index} u32[{0}]\n",
        pf.padded_nnz
    ));

    let rows = plan.matrix.rows();
    let x_at = |var: &str| {
        if plan.col_offset == 0 {
            format!("col_indices_{index}[{var}] as usize")
        } else {
            format!("col_indices_{index}[{var}] as usize + {}", plan.col_offset)
        }
    };
    let x_index = x_at("idx");
    let simd = &plan.simd;
    if simd.is_vectorized() {
        let shape = match simd.lane_mapping {
            SimdLaneMapping::Rows => "adjacent rows (one accumulator chain per lane)",
            SimdLaneMapping::Nnz => "one row's non-zeros (runtime AVX2/NEON gather)",
        };
        out.push_str(&format!(
            "    //   simd: {} lanes across {shape}, prefetch distance {}\n",
            simd.lanes, simd.prefetch_distance
        ));
    }
    let origin = rust_index_expr(pf, "origin_rows", "row");
    let row_lanes = matches!(simd.lane_mapping, SimdLaneMapping::Rows) && simd.is_vectorized();
    match plan.mapping {
        Mapping::RowPerThread { .. } | Mapping::VectorPerRow { .. } if row_lanes => {
            // Row-lane SIMD loop: groups of `lanes` adjacent rows advance
            // together, one accumulator chain per lane, each lane summing
            // its own row in scalar order (bitwise-identical results).
            let lanes = simd.lanes;
            out.push_str(&format!(
                "    for row_group in (0..{rows}).step_by({lanes}) {{ // {lanes} adjacent rows per SIMD group\n"
            ));
            out.push_str(&format!(
                "        let mut lane = [0.0f32; {lanes}]; // lane l owns row_group + l\n"
            ));
            if simd.prefetch_distance > 0 {
                out.push_str(&format!(
                    "        // values/col_indices/x streams prefetched {} elements ahead\n",
                    simd.prefetch_distance
                ));
            }
            out.push_str(&format!(
                "        for l in 0..{lanes}.min({rows} - row_group) {{ // interleaved across lanes\n"
            ));
            out.push_str("            let row = row_group + l;\n");
            out.push_str(&format!(
                "            let start = {};\n",
                rust_index_expr(pf, "row_offsets", "row")
            ));
            out.push_str(&format!(
                "            let end = {};\n",
                rust_index_expr(pf, "row_offsets", "(row + 1)")
            ));
            out.push_str("            for idx in start..end {\n");
            out.push_str(&format!(
                "                lane[l] += values_{index}[idx] * x[{x_index}];\n"
            ));
            out.push_str("            }\n");
            out.push_str(&format!("            y[{origin}] += lane[l];\n"));
            out.push_str("        }\n");
            out.push_str("    }\n");
        }
        Mapping::RowPerThread { .. } | Mapping::VectorPerRow { .. } => {
            // Row-partition loop: contiguous row ranges are split over
            // alpha-parallel workers; each worker runs exactly this body.
            out.push_str(&format!(
                "    for row in 0..{rows} {{ // split into contiguous ranges across workers\n"
            ));
            out.push_str(&format!(
                "        let start = {};\n",
                rust_index_expr(pf, "row_offsets", "row")
            ));
            out.push_str(&format!(
                "        let end = {};\n",
                rust_index_expr(pf, "row_offsets", "(row + 1)")
            ));
            emit_rust_row_dot(&mut out, "        ", index, simd, &x_at, "start", "end");
            out.push_str(&format!("        y[{origin}] += acc;\n"));
            out.push_str("    }\n");
        }
        Mapping::NnzSplit { nnz_per_thread } => {
            let nnz = plan.matrix.nnz();
            let npt = nnz_per_thread.max(1);
            let chunks = nnz.div_ceil(npt).max(1);
            out.push_str(&format!(
                "    for chunk in 0..{chunks} {{ // nnz-partition loop: {npt} non-zeros per chunk, grouped across workers\n"
            ));
            out.push_str(&format!("        let start = chunk * {npt};\n"));
            out.push_str(&format!("        let end = (start + {npt}).min({nnz});\n"));
            out.push_str(&format!(
                "        let mut row = {};\n",
                rust_index_expr(pf, "bmt_row_starts", "chunk")
            ));
            out.push_str("        let mut cursor = start;\n");
            out.push_str("        while cursor < end {\n");
            out.push_str(&format!(
                "            let seg_end = ({}).min(end);\n",
                rust_index_expr(pf, "row_offsets", "(row + 1)")
            ));
            emit_rust_row_dot(
                &mut out,
                "            ",
                index,
                simd,
                &x_at,
                "cursor",
                "seg_end",
            );
            out.push_str(&format!(
                "            y[{origin}] += acc; // row boundaries merge via accumulation\n"
            ));
            out.push_str("            cursor = seg_end;\n");
            out.push_str("            row += 1;\n");
            out.push_str("        }\n");
            out.push_str("    }\n");
        }
    }
    out
}

/// Emits the dot product over `[start, end)` into a variable `acc`: the
/// scalar loop, or — when the plan maps SIMD lanes across the row's
/// non-zeros — the lane-strided gather loop with its fixed horizontal-add
/// tree and serial tail (the exact shape `alpha-cpu`'s microkernels run).
fn emit_rust_row_dot(
    out: &mut String,
    indent: &str,
    index: usize,
    simd: &alpha_graph::SimdPlan,
    x_at: &dyn Fn(&str) -> String,
    start: &str,
    end: &str,
) {
    if !simd.is_vectorized() || simd.lane_mapping != SimdLaneMapping::Nnz {
        out.push_str(&format!("{indent}let mut acc = 0.0f32;\n"));
        out.push_str(&format!("{indent}for idx in {start}..{end} {{\n"));
        out.push_str(&format!(
            "{indent}    acc += values_{index}[idx] * x[{}];\n",
            x_at("idx")
        ));
        out.push_str(&format!("{indent}}}\n"));
        return;
    }
    let lanes = simd.lanes;
    out.push_str(&format!(
        "{indent}let mut lane = [0.0f32; {lanes}]; // {lanes}-lane gather kernel (AVX2 _mm256_i32gather_ps / NEON, runtime-dispatched)\n"
    ));
    out.push_str(&format!("{indent}let mut idx = {start};\n"));
    out.push_str(&format!("{indent}while idx + {lanes} <= {end} {{\n"));
    if simd.prefetch_distance > 0 {
        out.push_str(&format!(
            "{indent}    // values/col_indices/x streams prefetched {} elements ahead\n",
            simd.prefetch_distance
        ));
    }
    out.push_str(&format!("{indent}    for l in 0..{lanes} {{\n"));
    out.push_str(&format!(
        "{indent}        lane[l] += values_{index}[idx + l] * x[{}];\n",
        x_at("idx + l")
    ));
    out.push_str(&format!("{indent}    }}\n"));
    out.push_str(&format!("{indent}    idx += {lanes};\n"));
    out.push_str(&format!("{indent}}}\n"));
    out.push_str(&format!(
        "{indent}let mut acc = hsum_tree(&lane); // fixed halving tree, identical on every backend\n"
    ));
    out.push_str(&format!(
        "{indent}for t in idx..{end} {{ // serial tail, accumulated separately\n"
    ));
    out.push_str(&format!(
        "{indent}    acc += values_{index}[t] * x[{}];\n",
        x_at("t")
    ));
    out.push_str(&format!("{indent}}}\n"));
}

fn describe_model(model: &CompressionModel, exceptions: usize) -> String {
    let base = match model {
        CompressionModel::Linear { base, slope } => format!("value(i) = {base} + {slope} * i"),
        CompressionModel::Step {
            base,
            slope,
            period,
        } => {
            format!("value(i) = {base} + {slope} * (i / {period})")
        }
        CompressionModel::PeriodicLinear { slope, period, .. } => {
            format!("value(i) = pattern[i % {period}] + {slope} * (i / {period})")
        }
    };
    if exceptions > 0 {
        format!("{base} ({exceptions} patched exception(s))")
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use crate::{generate, GeneratorOptions};
    use alpha_graph::presets;
    use alpha_matrix::gen;

    fn source_for(graph: &alpha_graph::OperatorGraph) -> String {
        let matrix = gen::uniform_random(512, 512, 8, 3);
        generate(graph, &matrix, GeneratorOptions::default())
            .unwrap()
            .source
    }

    #[test]
    fn emitted_source_contains_kernel_and_launcher() {
        let src = source_for(&presets::sell_like());
        assert!(src.contains("__global__ void alphasparse_partition_0"));
        assert!(src.contains("alphasparse_spmv"));
        assert!(src.contains("<<<"));
    }

    #[test]
    fn reduction_fragments_match_operators() {
        let src = source_for(&presets::csr5_like(16));
        assert!(src.contains("WARP_SEG_RED"));
        assert!(src.contains("atomicAdd"));
        assert!(src.contains("THREAD_BITMAP_RED"));

        let src = source_for(&presets::csr_adaptive_like());
        assert!(src.contains("SHMEM_OFFSET_RED"));
        assert!(src.contains("__syncthreads"));
    }

    #[test]
    fn compression_is_documented_in_source() {
        let src = source_for(&presets::csr_scalar());
        assert!(src.contains("Model-Driven Format Compression"));
        assert!(src.contains("value(i) ="));
    }

    #[test]
    fn branched_designs_emit_one_kernel_per_partition() {
        let src = source_for(&presets::row_split_hybrid(2));
        assert!(src.contains("alphasparse_partition_0"));
        assert!(src.contains("alphasparse_partition_1"));
    }

    #[test]
    fn operator_provenance_is_embedded() {
        let src = source_for(&presets::figure5_example());
        assert!(src.contains("COMPRESS"));
        assert!(src.contains("BMT_PAD"));
        assert!(src.contains("GMEM_ATOM_RED"));
    }

    #[test]
    fn vectorized_plans_emit_the_simd_loop_shape() {
        use alpha_graph::{Operator, OperatorGraph};
        let matrix = gen::uniform_random(256, 256, 8, 5);
        let gathered = OperatorGraph::linear(vec![
            Operator::Compress,
            Operator::BmtRowBlock { rows: 1 },
            Operator::SimdNnzLanes { lanes: 8 },
            Operator::SimdPrefetch { distance: 16 },
            Operator::ThreadTotalRed,
        ]);
        let rust = generate(&gathered, &matrix, GeneratorOptions::default())
            .unwrap()
            .rust_source;
        assert!(rust.contains("simd: 8 lanes across one row's non-zeros"));
        assert!(rust.contains("prefetch distance 16"));
        assert!(rust.contains("_mm256_i32gather_ps"));
        assert!(rust.contains("hsum_tree(&lane)"));
        assert!(rust.contains("serial tail"));

        let row_lanes = OperatorGraph::linear(vec![
            Operator::Compress,
            Operator::BmtRowBlock { rows: 1 },
            Operator::SimdRowLanes { lanes: 4 },
            Operator::ThreadTotalRed,
        ]);
        let rust = generate(&row_lanes, &matrix, GeneratorOptions::default())
            .unwrap()
            .rust_source;
        assert!(rust.contains("simd: 4 lanes across adjacent rows"));
        assert!(rust.contains("4 adjacent rows per SIMD group"));

        // Scalar designs keep the scalar shape.
        let rust = generate(&presets::csr_scalar(), &matrix, GeneratorOptions::default())
            .unwrap()
            .rust_source;
        assert!(!rust.contains("simd:"));
        assert!(!rust.contains("hsum_tree"));
    }
}
