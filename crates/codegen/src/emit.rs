//! CUDA-like source emission.
//!
//! AlphaSparse's user-facing output is generated CUDA code (the paper's
//! Figure 7).  The simulator does not compile this text — it interprets the
//! structured kernel directly — but the emitted source preserves the
//! "output is code" property: it documents the machine-designed format's
//! arrays, the loop skeleton over thread blocks / warps / threads, the chosen
//! reduction fragments, and which index arrays Model-Driven Format
//! Compression replaced with closed-form expressions.

use crate::compress::CompressionModel;
use crate::format::{MachineFormat, PartitionFormat};
use alpha_graph::{
    BlockReduction, Mapping, MatrixMetadataSet, PartitionPlan, ThreadReduction, WarpReduction,
};

/// Emits CUDA-like source for the whole generated SpMV program.
pub fn emit_cuda(metadata: &MatrixMetadataSet, format: &MachineFormat) -> String {
    let mut out = String::new();
    out.push_str("// Machine-generated SpMV program (AlphaSparse reproduction)\n");
    out.push_str(&format!(
        "// matrix: {} rows x {} cols, {} non-zeros, {} partition(s)\n\n",
        metadata.original_rows,
        metadata.original_cols,
        metadata.original_nnz,
        metadata.partitions.len()
    ));
    for (i, (plan, pf)) in metadata
        .partitions
        .iter()
        .zip(&format.partitions)
        .enumerate()
    {
        out.push_str(&emit_partition(i, plan, pf));
        out.push('\n');
    }
    out.push_str(&emit_host_launcher(metadata, format));
    out
}

fn emit_partition(index: usize, plan: &PartitionPlan, pf: &PartitionFormat) -> String {
    let mut out = String::new();
    out.push_str(&format!("// ---- partition {index} ----\n"));
    out.push_str(&format!("// operator graph: {}\n", plan.describe()));
    out.push_str("// format arrays:\n");
    for array in &pf.arrays {
        match &array.compressed {
            Some(c) => out.push_str(&format!(
                "//   {:<18} compressed: {}\n",
                array.name,
                describe_model(&c.model, c.exceptions.len())
            )),
            None => out.push_str(&format!(
                "//   {:<18} u32[{}]\n",
                array.name,
                array.data.len()
            )),
        }
    }
    out.push_str(&format!(
        "//   values             f32[{0}], col_indices u32[{0}] (padded)\n",
        pf.padded_nnz
    ));

    out.push_str(&format!(
        "__global__ void alphasparse_partition_{index}(const float* __restrict__ values,\n\
         \x20                                        const unsigned* __restrict__ col_indices,\n\
         \x20                                        const float* __restrict__ x,\n\
         \x20                                        float* y) {{\n"
    ));
    out.push_str(&format!(
        "  // SET_RESOURCES: {} threads per block, {} blocks\n",
        pf.layout.threads_per_block, pf.layout.blocks
    ));
    match plan.mapping {
        Mapping::RowPerThread { rows_per_thread } => {
            out.push_str(&format!(
                "  // BMT_ROW_BLOCK: each thread owns {rows_per_thread} row(s); \
                 {} storage\n",
                if plan.interleaved {
                    "interleaved (column-major per block)"
                } else {
                    "row-major"
                }
            ));
            out.push_str("  for (int bmtb = blockIdx.x; ; bmtb += gridDim.x) {\n");
            out.push_str("    int bmt = bmtb * blockDim.x + threadIdx.x;\n");
            out.push_str(&emit_addressing(pf, "    "));
            out.push_str("    float partial[ROWS_PER_THREAD];\n");
            out.push_str("    for (int k = 0; k < bmt_size; ++k) {\n");
            out.push_str(&format!(
                "      int idx = {};\n",
                if plan.interleaved {
                    "bmtb_base + k * blockDim.x + threadIdx.x"
                } else {
                    "bmt_offset + k"
                }
            ));
            out.push_str("      partial[row_of(k)] += values[idx] * x[col_indices[idx]];\n");
            out.push_str("    }\n");
        }
        Mapping::VectorPerRow { threads_per_row } => {
            out.push_str(&format!(
                "  // BMT_COL_BLOCK: {threads_per_row} threads cooperate on each row\n"
            ));
            out.push_str("  int lane = threadIdx.x % THREADS_PER_ROW;\n");
            out.push_str(
                "  int row  = (blockIdx.x * blockDim.x + threadIdx.x) / THREADS_PER_ROW;\n",
            );
            out.push_str(&emit_addressing(pf, "  "));
            out.push_str("  float partial = 0.f;\n");
            out.push_str(
                "  for (int idx = row_start + lane; idx < row_end; idx += THREADS_PER_ROW)\n",
            );
            out.push_str("    partial += values[idx] * x[col_indices[idx]];\n");
        }
        Mapping::NnzSplit { nnz_per_thread } => {
            out.push_str(&format!(
                "  // BMT_NNZ_BLOCK: each thread owns {nnz_per_thread} consecutive non-zeros\n"
            ));
            out.push_str(
                "  int first_nz = (blockIdx.x * blockDim.x + threadIdx.x) * NNZ_PER_THREAD;\n",
            );
            out.push_str(&emit_addressing(pf, "  "));
            out.push_str("  int row = bmt_row_starts[thread_id];\n");
            out.push_str("  float partial = 0.f;\n");
            out.push_str("  for (int idx = first_nz; idx < first_nz + NNZ_PER_THREAD; ++idx) {\n");
            out.push_str("    partial += values[idx] * x[col_indices[idx]];\n");
            out.push_str("    // THREAD_BITMAP_RED: emit partial at each row boundary\n");
            out.push_str("    if (idx + 1 == row_offsets[row + 1]) { flush(partial, row++); }\n");
            out.push_str("  }\n");
        }
    }
    out.push_str(&emit_reduction(plan));
    out.push_str("}\n");
    out
}

fn emit_addressing(pf: &PartitionFormat, indent: &str) -> String {
    let mut out = String::new();
    for array in &pf.arrays {
        let line = match &array.compressed {
            Some(c) => format!(
                "{indent}// {} eliminated by Model-Driven Format Compression: {}\n",
                array.name,
                describe_model(&c.model, c.exceptions.len())
            ),
            None => format!("{indent}// load {} from global memory\n", array.name),
        };
        out.push_str(&line);
    }
    out
}

fn emit_reduction(plan: &PartitionPlan) -> String {
    let mut out = String::new();
    match plan.reduction.thread {
        ThreadReduction::Total => {
            out.push_str("  // THREAD_TOTAL_RED: accumulate the thread's chunk in a register\n");
        }
        ThreadReduction::Bitmap => {
            out.push_str(
                "  // THREAD_BITMAP_RED: per-row partials tracked with a boundary bitmap\n",
            );
        }
    }
    match plan.reduction.warp {
        Some(WarpReduction::Total) => {
            out.push_str("  partial = warp_reduce_sum(partial);            // WARP_TOTAL_RED\n");
        }
        Some(WarpReduction::Bitmap) => {
            out.push_str("  partial = warp_bitmap_reduce(partial, bitmap); // WARP_BITMAP_RED\n");
        }
        Some(WarpReduction::Segmented) => {
            out.push_str("  partial = warp_segmented_sum(partial, flags);  // WARP_SEG_RED\n");
        }
        None => {}
    }
    match plan.reduction.block {
        Some(BlockReduction::SharedOffset) => {
            out.push_str(
                "  // SHMEM_OFFSET_RED (adapter copies register partials into shared memory)\n\
                 \x20 shared_partials[threadIdx.x] = partial; __syncthreads();\n\
                 \x20 reduce_rows_by_offset(shared_partials, row_offsets_in_block);\n",
            );
        }
        Some(BlockReduction::SharedTotal) => {
            out.push_str(
                "  shared_partials[threadIdx.x] = partial; __syncthreads();\n\
                 \x20 block_total = block_reduce_sum(shared_partials); // SHMEM_TOTAL_RED\n",
            );
        }
        None => {}
    }
    if plan.reduction.global_atomic {
        out.push_str("  atomicAdd(&y[origin_rows[row]], partial);        // GMEM_ATOM_RED\n");
    } else {
        out.push_str("  y[origin_rows[row]] = partial;                   // direct store\n");
    }
    out
}

fn emit_host_launcher(metadata: &MatrixMetadataSet, format: &MachineFormat) -> String {
    let mut out = String::new();
    out.push_str("// ---- host launcher ----\n");
    out.push_str("void alphasparse_spmv(const float* x, float* y) {\n");
    for (i, pf) in format.partitions.iter().enumerate() {
        out.push_str(&format!(
            "  alphasparse_partition_{i}<<<{}, {}>>>(values_{i}, col_indices_{i}, x, y);\n",
            pf.layout.blocks, pf.layout.threads_per_block
        ));
    }
    out.push_str(&format!(
        "  // total format footprint: {} bytes for {} stored non-zeros\n",
        format.bytes(),
        metadata.original_nnz
    ));
    out.push_str("}\n");
    out
}

fn describe_model(model: &CompressionModel, exceptions: usize) -> String {
    let base = match model {
        CompressionModel::Linear { base, slope } => format!("value(i) = {base} + {slope} * i"),
        CompressionModel::Step {
            base,
            slope,
            period,
        } => {
            format!("value(i) = {base} + {slope} * (i / {period})")
        }
        CompressionModel::PeriodicLinear { slope, period, .. } => {
            format!("value(i) = pattern[i % {period}] + {slope} * (i / {period})")
        }
    };
    if exceptions > 0 {
        format!("{base} ({exceptions} patched exception(s))")
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use crate::{generate, GeneratorOptions};
    use alpha_graph::presets;
    use alpha_matrix::gen;

    fn source_for(graph: &alpha_graph::OperatorGraph) -> String {
        let matrix = gen::uniform_random(512, 512, 8, 3);
        generate(graph, &matrix, GeneratorOptions::default())
            .unwrap()
            .source
    }

    #[test]
    fn emitted_source_contains_kernel_and_launcher() {
        let src = source_for(&presets::sell_like());
        assert!(src.contains("__global__ void alphasparse_partition_0"));
        assert!(src.contains("alphasparse_spmv"));
        assert!(src.contains("<<<"));
    }

    #[test]
    fn reduction_fragments_match_operators() {
        let src = source_for(&presets::csr5_like(16));
        assert!(src.contains("WARP_SEG_RED"));
        assert!(src.contains("atomicAdd"));
        assert!(src.contains("THREAD_BITMAP_RED"));

        let src = source_for(&presets::csr_adaptive_like());
        assert!(src.contains("SHMEM_OFFSET_RED"));
        assert!(src.contains("__syncthreads"));
    }

    #[test]
    fn compression_is_documented_in_source() {
        let src = source_for(&presets::csr_scalar());
        assert!(src.contains("Model-Driven Format Compression"));
        assert!(src.contains("value(i) ="));
    }

    #[test]
    fn branched_designs_emit_one_kernel_per_partition() {
        let src = source_for(&presets::row_split_hybrid(2));
        assert!(src.contains("alphasparse_partition_0"));
        assert!(src.contains("alphasparse_partition_1"));
    }

    #[test]
    fn operator_provenance_is_embedded() {
        let src = source_for(&presets::figure5_example());
        assert!(src.contains("COMPRESS"));
        assert!(src.contains("BMT_PAD"));
        assert!(src.contains("GMEM_ATOM_RED"));
    }
}
