//! Work-distribution layout computations shared by the format extractor, the
//! kernel builder and the source emitter.
//!
//! A [`PartitionLayout`] resolves the mapping stage of one partition into
//! concrete numbers: how many thread blocks are launched, which rows (or
//! non-zeros) each block and each thread own, and the padded chunk lengths
//! produced by the `*_PAD` operators.

use alpha_gpu::WARP_SIZE;
use alpha_graph::{Mapping, PadScope, PartitionPlan};

/// Resolved layout of one partition.
#[derive(Debug, Clone)]
pub struct PartitionLayout {
    /// Threads per block actually used (a multiple of the warp size).
    pub threads_per_block: usize,
    /// Number of thread blocks launched for this partition.
    pub blocks: usize,
    /// Rows owned by each thread block (row-based mappings only).
    pub rows_per_block: usize,
    /// For `RowPerThread`: the padded chunk length of every thread, indexed
    /// by global thread id; equals the raw chunk length when no padding
    /// operator was applied.
    pub padded_chunk_lens: Vec<u32>,
    /// Total stored slots including padding (`>= nnz`).
    pub padded_nnz: usize,
}

impl PartitionLayout {
    /// Builds the layout for a partition plan.
    pub fn new(plan: &PartitionPlan) -> Self {
        match plan.mapping {
            Mapping::RowPerThread { rows_per_thread } => {
                Self::row_per_thread(plan, rows_per_thread.max(1))
            }
            Mapping::VectorPerRow { threads_per_row } => {
                Self::vector_per_row(plan, threads_per_row.max(1))
            }
            Mapping::NnzSplit { nnz_per_thread } => Self::nnz_split(plan, nnz_per_thread.max(1)),
        }
    }

    fn row_per_thread(plan: &PartitionPlan, rows_per_thread: usize) -> Self {
        let tpb = plan.threads_per_block.max(WARP_SIZE);
        let rows = plan.matrix.rows();
        // Rows handled by one full block of threads.
        let natural_rows_per_block = tpb * rows_per_thread;
        let rows_per_block = plan
            .rows_per_bmtb
            .map(|r| r.clamp(rows_per_thread, natural_rows_per_block))
            .unwrap_or(natural_rows_per_block)
            .max(rows_per_thread)
            // Keep block boundaries aligned to whole thread chunks so chunk
            // indices stay consistent across blocks.
            .div_ceil(rows_per_thread)
            * rows_per_thread;
        let blocks = rows.div_ceil(rows_per_block).max(1);

        // Raw chunk length per thread: the nnz of its rows.
        let threads_total = rows.div_ceil(rows_per_thread);
        let mut raw: Vec<u32> = Vec::with_capacity(threads_total);
        for t in 0..threads_total {
            let first = t * rows_per_thread;
            let last = ((t + 1) * rows_per_thread).min(rows);
            let len: usize = (first..last).map(|r| plan.matrix.row_len(r)).sum();
            raw.push(len as u32);
        }

        let threads_per_chunk_block = rows_per_block.div_ceil(rows_per_thread);
        let padded = apply_padding(plan, &raw, threads_per_chunk_block);
        let padded_nnz = padded.iter().map(|&l| l as usize).sum();
        PartitionLayout {
            threads_per_block: tpb,
            blocks,
            rows_per_block,
            padded_chunk_lens: padded,
            padded_nnz,
        }
    }

    fn vector_per_row(plan: &PartitionPlan, threads_per_row: usize) -> Self {
        let tpb = plan.threads_per_block.max(WARP_SIZE);
        let rows = plan.matrix.rows();
        let natural_rows_per_block = (tpb / threads_per_row).max(1);
        let rows_per_block = plan
            .rows_per_bmtb
            .map(|r| r.clamp(1, natural_rows_per_block))
            .unwrap_or(natural_rows_per_block);
        let blocks = rows.div_ceil(rows_per_block).max(1);
        PartitionLayout {
            threads_per_block: tpb,
            blocks,
            rows_per_block,
            padded_chunk_lens: Vec::new(),
            padded_nnz: plan.matrix.nnz(),
        }
    }

    fn nnz_split(plan: &PartitionPlan, nnz_per_thread: usize) -> Self {
        let tpb = plan.threads_per_block.max(WARP_SIZE);
        let nnz = plan.matrix.nnz();
        let threads_total = nnz.div_ceil(nnz_per_thread).max(1);
        let blocks = threads_total.div_ceil(tpb).max(1);
        PartitionLayout {
            threads_per_block: tpb,
            blocks,
            rows_per_block: 0,
            padded_chunk_lens: Vec::new(),
            padded_nnz: nnz,
        }
    }

    /// Padding overhead ratio: padded slots divided by real non-zeros.
    pub fn padding_ratio(&self, nnz: usize) -> f64 {
        if nnz == 0 {
            1.0
        } else {
            self.padded_nnz as f64 / nnz as f64
        }
    }
}

/// Applies the partition's padding directive to raw per-thread chunk lengths.
fn apply_padding(plan: &PartitionPlan, raw: &[u32], threads_per_block: usize) -> Vec<u32> {
    let Some(padding) = plan.padding else {
        return raw.to_vec();
    };
    let multiple = padding.multiple.max(1) as u32;
    let round_up = |v: u32| v.div_ceil(multiple) * multiple;
    match padding.scope {
        PadScope::Thread => raw.iter().map(|&l| round_up(l.max(1))).collect(),
        PadScope::Warp | PadScope::ThreadBlock => {
            let group = match padding.scope {
                PadScope::Warp => WARP_SIZE,
                PadScope::ThreadBlock => threads_per_block.max(1),
                PadScope::Thread => unreachable!(),
            };
            let mut out = Vec::with_capacity(raw.len());
            for chunk in raw.chunks(group) {
                let width = round_up(chunk.iter().copied().max().unwrap_or(0).max(1));
                out.extend(std::iter::repeat_n(width, chunk.len()));
            }
            out
        }
    }
}

/// Splits a global thread-block id range over partitions: returns, for a
/// composite kernel, the partition index and local block id of a global
/// block.
#[derive(Debug, Clone)]
pub struct BlockDirectory {
    /// Exclusive prefix sums of per-partition block counts.
    offsets: Vec<usize>,
}

impl BlockDirectory {
    /// Builds the directory from per-partition block counts.
    pub fn new(blocks_per_partition: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(blocks_per_partition.len() + 1);
        let mut total = 0;
        offsets.push(0);
        for &b in blocks_per_partition {
            total += b;
            offsets.push(total);
        }
        BlockDirectory { offsets }
    }

    /// Total number of blocks across partitions.
    pub fn total_blocks(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Maps a global block id to `(partition, local block id)`.
    pub fn locate(&self, global_block: usize) -> Option<(usize, usize)> {
        if global_block >= self.total_blocks() {
            return None;
        }
        let partition = match self.offsets.binary_search(&global_block) {
            Ok(exact) => {
                // `exact` may point at an empty partition boundary; advance to
                // the partition that actually starts here.
                let mut p = exact;
                while self.offsets[p + 1] == self.offsets[p] {
                    p += 1;
                }
                p
            }
            Err(insert) => insert - 1,
        };
        Some((partition, global_block - self.offsets[partition]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_graph::{design, presets};
    use alpha_matrix::gen;

    fn plan_for(graph: &alpha_graph::OperatorGraph) -> PartitionPlan {
        let matrix = gen::powerlaw(300, 300, 8, 2.0, 5);
        design(graph, &matrix).unwrap().partitions.remove(0)
    }

    #[test]
    fn row_per_thread_layout_covers_all_rows() {
        let plan = plan_for(&presets::csr_scalar());
        let layout = PartitionLayout::new(&plan);
        assert_eq!(layout.padded_chunk_lens.len(), 300);
        assert!(layout.blocks * layout.rows_per_block >= 300);
        assert_eq!(layout.padded_nnz, plan.matrix.nnz());
        assert!((layout.padding_ratio(plan.matrix.nnz()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_padding_equalises_chunks_within_blocks() {
        let plan = plan_for(&presets::sell_like());
        let layout = PartitionLayout::new(&plan);
        assert!(layout.padded_nnz >= plan.matrix.nnz());
        // Within each thread-block group the padded lengths are identical.
        let group = plan.rows_per_bmtb.unwrap();
        for chunk in layout.padded_chunk_lens.chunks(group) {
            assert!(chunk.iter().all(|&l| l == chunk[0]));
        }
        // Sorting first reduces the padding overhead compared to the same
        // design without the global SORT (the reason SELL sorts at all).
        let unsorted_graph = alpha_graph::OperatorGraph {
            converting: vec![alpha_graph::Operator::Compress],
            branches: presets::sell_like().branches,
        };
        let unsorted_plan = plan_for(&unsorted_graph);
        let unsorted_layout = PartitionLayout::new(&unsorted_plan);
        assert!(layout.padded_nnz <= unsorted_layout.padded_nnz);
    }

    #[test]
    fn thread_padding_rounds_to_multiple() {
        let plan = plan_for(&presets::figure5_example());
        let layout = PartitionLayout::new(&plan);
        let multiple = plan.padding.unwrap().multiple as u32;
        assert!(layout
            .padded_chunk_lens
            .iter()
            .all(|&l| l % multiple == 0 && l > 0));
    }

    #[test]
    fn vector_layout_assigns_rows_per_block() {
        let plan = plan_for(&presets::csr_vector());
        let layout = PartitionLayout::new(&plan);
        assert_eq!(layout.rows_per_block, 128 / 32);
        assert!(layout.blocks * layout.rows_per_block >= 300);
    }

    #[test]
    fn nnz_split_layout_covers_all_nnz() {
        let plan = plan_for(&presets::csr5_like(16));
        let layout = PartitionLayout::new(&plan);
        assert!(layout.blocks * layout.threads_per_block * 16 >= plan.matrix.nnz());
    }

    #[test]
    fn block_directory_locates_partitions() {
        let dir = BlockDirectory::new(&[3, 0, 2]);
        assert_eq!(dir.total_blocks(), 5);
        assert_eq!(dir.locate(0), Some((0, 0)));
        assert_eq!(dir.locate(2), Some((0, 2)));
        assert_eq!(dir.locate(3), Some((2, 0)));
        assert_eq!(dir.locate(4), Some((2, 1)));
        assert_eq!(dir.locate(5), None);
    }
}
