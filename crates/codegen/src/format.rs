//! Machine-designed format extraction (paper Section V-B).
//!
//! The format of a generated SpMV program is the set of arrays the kernel
//! reads: the non-zero values and column indices (possibly padded and
//! interleaved) plus the index arrays the mapping stage introduced — chunk
//! offsets, row offsets, origin-row permutations, per-thread row starts.
//! This module extracts those arrays from the Matrix Metadata Set and applies
//! Model-Driven Format Compression to the index arrays.

use crate::compress::{compress_array, CompressedArray};
use crate::layout::PartitionLayout;
use crate::GeneratorOptions;
use alpha_graph::{Mapping, MatrixMetadataSet, PartitionPlan};

/// One named index array of a machine-designed format.
#[derive(Debug, Clone)]
pub struct FormatArray {
    /// Array name (mirrors the naming of the paper's Figure 5:
    /// `origin_rows`, `bmt_nz_offsets`, …).
    pub name: String,
    /// The raw index data.
    pub data: Vec<u32>,
    /// The fitted compression model, when Model-Driven Format Compression
    /// succeeded; a compressed array is computed instead of loaded.
    pub compressed: Option<CompressedArray>,
}

impl FormatArray {
    fn new(name: &str, data: Vec<u32>, try_compress: bool) -> Self {
        let compressed = if try_compress {
            compress_array(&data)
        } else {
            None
        };
        FormatArray {
            name: name.to_string(),
            data,
            compressed,
        }
    }

    /// True if the array was replaced by a fitted model.
    pub fn is_compressed(&self) -> bool {
        self.compressed.is_some()
    }

    /// Bytes this array occupies in simulated device memory.
    pub fn bytes(&self) -> usize {
        match &self.compressed {
            Some(c) => c.compressed_bytes(),
            None => self.data.len() * 4,
        }
    }

    /// Reads entry `i` (through the model when compressed).
    pub fn get(&self, i: usize) -> u32 {
        match &self.compressed {
            Some(c) => c.evaluate(i),
            None => self.data[i],
        }
    }
}

/// The format arrays of one partition.
#[derive(Debug, Clone)]
pub struct PartitionFormat {
    /// Index arrays by name.
    pub arrays: Vec<FormatArray>,
    /// Stored value/column slots including padding.
    pub padded_nnz: usize,
    /// Resolved work-distribution layout.
    pub layout: PartitionLayout,
}

impl PartitionFormat {
    /// Looks up an array by name.
    pub fn array(&self, name: &str) -> Option<&FormatArray> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// True if the named array exists and was compressed away.
    pub fn is_array_compressed(&self, name: &str) -> bool {
        self.array(name).map(|a| a.is_compressed()).unwrap_or(false)
    }

    /// Total bytes of this partition's format: padded values (4 bytes) +
    /// padded column indices (4 bytes) + the index arrays.
    pub fn bytes(&self) -> usize {
        self.padded_nnz * 8 + self.arrays.iter().map(FormatArray::bytes).sum::<usize>()
    }
}

/// The complete machine-designed format.
#[derive(Debug, Clone)]
pub struct MachineFormat {
    /// One format per partition, in partition order.
    pub partitions: Vec<PartitionFormat>,
}

impl MachineFormat {
    /// Total bytes of the format in simulated device memory.
    pub fn bytes(&self) -> usize {
        self.partitions.iter().map(PartitionFormat::bytes).sum()
    }

    /// Total padded slots across partitions.
    pub fn padded_nnz(&self) -> usize {
        self.partitions.iter().map(|p| p.padded_nnz).sum()
    }

    /// Names of every array, with the partition index and whether it was
    /// compressed (used by reports and EXPERIMENTS.md).
    pub fn array_inventory(&self) -> Vec<(usize, String, bool)> {
        let mut inventory = Vec::new();
        for (i, p) in self.partitions.iter().enumerate() {
            for a in &p.arrays {
                inventory.push((i, a.name.clone(), a.is_compressed()));
            }
        }
        inventory
    }
}

/// Extracts the machine-designed format from a metadata set.
pub fn extract_format(metadata: &MatrixMetadataSet, options: GeneratorOptions) -> MachineFormat {
    let partitions = metadata
        .partitions
        .iter()
        .map(|plan| extract_partition(plan, options))
        .collect();
    MachineFormat { partitions }
}

fn extract_partition(plan: &PartitionPlan, options: GeneratorOptions) -> PartitionFormat {
    let layout = PartitionLayout::new(plan);
    let compress = options.model_compression;
    let mut arrays = Vec::new();

    // Origin-row permutation (identity when no sort/bin/div reordering took
    // place, in which case compression removes it entirely).
    arrays.push(FormatArray::new(
        "origin_rows",
        plan.origin_rows.clone(),
        compress,
    ));

    match plan.mapping {
        Mapping::RowPerThread { .. } => {
            if plan.padding.is_some() {
                // Padded layouts address storage through per-thread chunk
                // offsets (prefix sums of the padded chunk lengths).
                let mut offsets = Vec::with_capacity(layout.padded_chunk_lens.len() + 1);
                let mut acc = 0u32;
                offsets.push(0);
                for &len in &layout.padded_chunk_lens {
                    acc += len;
                    offsets.push(acc);
                }
                arrays.push(FormatArray::new("bmt_nz_offsets", offsets, compress));
                arrays.push(FormatArray::new(
                    "bmt_sizes",
                    layout.padded_chunk_lens.clone(),
                    compress,
                ));
            }
            // Row offsets are always part of the format: unpadded layouts use
            // them to address storage, padded ones to find row boundaries.
            arrays.push(FormatArray::new(
                "row_offsets",
                plan.matrix.row_offsets().to_vec(),
                compress,
            ));
        }
        Mapping::VectorPerRow { .. } => {
            arrays.push(FormatArray::new(
                "row_offsets",
                plan.matrix.row_offsets().to_vec(),
                compress,
            ));
        }
        Mapping::NnzSplit { nnz_per_thread } => {
            arrays.push(FormatArray::new(
                "row_offsets",
                plan.matrix.row_offsets().to_vec(),
                compress,
            ));
            // First row of each thread's chunk, found by binary search over
            // the row offsets (precomputed exactly as CSR5's tile descriptors
            // precompute tile boundaries).
            let nnz = plan.matrix.nnz();
            let threads = nnz.div_ceil(nnz_per_thread.max(1)).max(1);
            let offsets = plan.matrix.row_offsets();
            let mut starts = Vec::with_capacity(threads);
            for t in 0..threads {
                let target = (t * nnz_per_thread).min(nnz) as u32;
                let row = match offsets.binary_search(&target) {
                    Ok(r) => r.min(plan.matrix.rows().saturating_sub(1)),
                    Err(r) => r.saturating_sub(1),
                };
                starts.push(row as u32);
            }
            arrays.push(FormatArray::new("bmt_row_starts", starts, compress));
        }
    }

    if let Some(boundaries) = &plan.bin_boundaries {
        arrays.push(FormatArray::new(
            "bin_offsets",
            boundaries.iter().map(|&b| b as u32).collect(),
            compress,
        ));
    }

    PartitionFormat {
        arrays,
        padded_nnz: layout.padded_nnz,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpha_graph::{design, presets};
    use alpha_matrix::gen;

    fn format_for(graph: &alpha_graph::OperatorGraph, compress: bool) -> MachineFormat {
        let matrix = gen::powerlaw(300, 300, 8, 2.0, 5);
        let metadata = design(graph, &matrix).unwrap();
        extract_format(
            &metadata,
            GeneratorOptions {
                model_compression: compress,
            },
        )
    }

    #[test]
    fn csr_scalar_format_has_expected_arrays() {
        let format = format_for(&presets::csr_scalar(), true);
        assert_eq!(format.partitions.len(), 1);
        let p = &format.partitions[0];
        assert!(p.array("origin_rows").is_some());
        assert!(p.array("row_offsets").is_some());
        assert!(p.array("bmt_nz_offsets").is_none());
        // Identity origin_rows compresses to a linear model.
        assert!(p.is_array_compressed("origin_rows"));
    }

    #[test]
    fn padded_format_includes_chunk_offsets() {
        let format = format_for(&presets::sell_like(), true);
        let p = &format.partitions[0];
        assert!(p.array("bmt_nz_offsets").is_some());
        assert!(p.array("bmt_sizes").is_some());
        assert!(p.padded_nnz >= 300);
    }

    #[test]
    fn compression_reduces_format_bytes() {
        let with = format_for(&presets::sell_like(), true);
        let without = format_for(&presets::sell_like(), false);
        assert!(with.bytes() <= without.bytes());
        // The sorted origin_rows array resists compression but the identity
        // arrays of the unsorted CSR-scalar design do not.
        let scalar_with = format_for(&presets::csr_scalar(), true);
        let scalar_without = format_for(&presets::csr_scalar(), false);
        assert!(scalar_with.bytes() < scalar_without.bytes());
    }

    #[test]
    fn nnz_split_format_has_row_starts() {
        let format = format_for(&presets::csr5_like(16), true);
        let p = &format.partitions[0];
        let starts = p.array("bmt_row_starts").expect("row starts present");
        // Starts are non-decreasing and within the row range.
        let values: Vec<u32> = (0..starts.data.len()).map(|i| starts.get(i)).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
        assert!(values.iter().all(|&v| (v as usize) < 300));
    }

    #[test]
    fn binned_format_records_bin_offsets() {
        let format = format_for(&presets::acsr_like(4), true);
        assert!(format.partitions[0].array("bin_offsets").is_some());
    }

    #[test]
    fn branched_format_has_one_partition_per_branch() {
        let format = format_for(&presets::row_split_hybrid(3), true);
        assert_eq!(format.partitions.len(), 3);
        let inventory = format.array_inventory();
        assert!(inventory
            .iter()
            .any(|(p, name, _)| *p == 2 && name == "row_offsets"));
    }

    #[test]
    fn format_array_get_reads_through_model() {
        let format = format_for(&presets::csr_scalar(), true);
        let origin = format.partitions[0].array("origin_rows").unwrap();
        assert!(origin.is_compressed());
        for i in (0..300).step_by(37) {
            assert_eq!(origin.get(i), i as u32);
        }
    }
}
