//! Snapshot tests for both source emitters.
//!
//! The emitted CUDA-like and Rust sources are user-facing artifacts: their
//! exact shape is part of the contract ("output is code").  These tests pin
//! the full text for a small deterministic matrix, so any change to either
//! emitter is a conscious, reviewed diff of the checked-in snapshot instead
//! of a silent drift.
//!
//! To regenerate after an intentional emitter change:
//! `UPDATE_SNAPSHOTS=1 cargo test -p alpha-codegen --test emit_snapshots`

use alpha_codegen::{generate, GeneratorOptions};
use alpha_graph::presets;
use alpha_matrix::{CooMatrix, CsrMatrix};
use std::path::PathBuf;

/// A fixed 8x8 matrix with two entries per row — fully deterministic, and
/// regular enough that Model-Driven Format Compression fires (both emitters
/// must show closed-form index functions).
fn fixture() -> CsrMatrix {
    let mut coo = CooMatrix::new(8, 8);
    for r in 0..8 {
        coo.push(r, r, 1.0 + r as f32);
        coo.push(r, (r + 3) % 8, 0.5);
    }
    CsrMatrix::from_coo(&coo)
}

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name)
}

fn assert_snapshot(name: &str, actual: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read snapshot {}: {e}\nregenerate with UPDATE_SNAPSHOTS=1 \
             cargo test -p alpha-codegen --test emit_snapshots",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "emitted source for {name} drifted from its snapshot; if the change \
         is intentional, regenerate with UPDATE_SNAPSHOTS=1"
    );
}

fn sources_for(graph: &alpha_graph::OperatorGraph) -> (String, String) {
    let generated = generate(graph, &fixture(), GeneratorOptions::default()).unwrap();
    (generated.source, generated.rust_source)
}

#[test]
fn csr_scalar_cuda_and_rust_snapshots() {
    let (cuda, rust) = sources_for(&presets::csr_scalar());
    assert_snapshot("csr_scalar_cuda.txt", &cuda);
    assert_snapshot("csr_scalar_rust.txt", &rust);
}

#[test]
fn nnz_split_cuda_and_rust_snapshots() {
    let (cuda, rust) = sources_for(&presets::csr5_like(4));
    assert_snapshot("csr5_like_cuda.txt", &cuda);
    assert_snapshot("csr5_like_rust.txt", &rust);
}

#[test]
fn emitters_agree_on_compression_decisions() {
    // Both artifacts must document the same closed-form arrays: an array the
    // native backend computes must not appear as a load in the CUDA text.
    let (cuda, rust) = sources_for(&presets::csr_scalar());
    assert!(cuda.contains("origin_rows") && cuda.contains("Model-Driven Format Compression"));
    assert!(rust.contains("origin_rows") && rust.contains("closed form"));
    // The fixture has two entries in every row: row_offsets is linear, so the
    // Rust loop computes the bounds instead of loading them.
    assert!(rust.contains("let start = 2 * row;"));
}
