//! Workspace-level umbrella crate (`alpha-suite`).  Hosts the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/`;
//! re-exports the public API of the member crates for convenience.
//!
//! The top-level API crate is the `alphasparse` package (`crates/core`); its
//! lib name matches the package name, so `pub use alphasparse` re-exports it
//! verbatim.  The remaining members are re-exported under the short module
//! names used throughout the docs (`matrix`, `graph`, `codegen`, `gpu`, `ml`,
//! `search`, `baselines`, `serve`).
pub use alphasparse;

pub use alpha_baselines as baselines;
pub use alpha_codegen as codegen;
pub use alpha_cpu as cpu;
pub use alpha_gpu as gpu;
pub use alpha_graph as graph;
pub use alpha_matrix as matrix;
pub use alpha_ml as ml;
pub use alpha_net as net;
pub use alpha_search as search;
pub use alpha_serve as serve;
pub use alpha_telemetry as telemetry;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_resolve() {
        // One symbol per member proves every re-export links.
        let _ = crate::matrix::IRREGULARITY_VARIANCE_THRESHOLD;
        let _ = crate::gpu::WARP_SIZE;
        let _ = crate::graph::presets::csr_scalar();
        let _ = crate::codegen::GeneratorOptions::default();
        let _ = crate::cpu::TimingHarness::default();
        let _ = crate::ml::Sample::new(vec![1.0], 2.0);
        let _ = crate::search::SearchConfig::default();
        let _ = crate::baselines::Baseline::figure9_set();
        let _ = crate::net::PROTOCOL_VERSION;
        let _ = crate::serve::STORE_LAYOUT_VERSION;
        let _ = crate::telemetry::BUCKET_BOUNDS;
        let _ = crate::alphasparse::AlphaSparse::new(crate::gpu::DeviceProfile::a100());
    }
}
