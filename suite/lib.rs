//! Workspace-level umbrella crate.  Hosts the runnable examples in `examples/`
//! and the cross-crate integration tests in `tests/`; re-exports the public
//! API of the member crates for convenience.
pub use alphasparse;
pub use alpha_baselines as baselines;
pub use alpha_codegen as codegen;
pub use alpha_gpu as gpu;
pub use alpha_graph as graph;
pub use alpha_matrix as matrix;
pub use alpha_search as search;
