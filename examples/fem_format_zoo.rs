//! FEM / stencil scenario: generate the SpMV program for every preset
//! operator graph on a 2-D Laplacian matrix and compare them with the
//! artificial formats — a tour of the format design space on the kind of
//! regular matrix PDE solvers produce.
//!
//! ```text
//! cargo run --release --example fem_format_zoo
//! ```

use alpha_baselines::Baseline;
use alpha_codegen::{generate, GeneratorOptions};
use alpha_gpu::GpuSim;
use alpha_graph::presets;
use alpha_matrix::{gen, DenseVector};
use alphasparse::DeviceProfile;

fn main() {
    // 2-D 5-point Laplacian on a 128 x 128 grid (16 K rows, ~81 K non-zeros).
    let matrix = gen::fem_stencil_2d(128, 7);
    let x = DenseVector::random(matrix.cols(), 3);
    let reference = matrix.spmv(x.as_slice()).expect("reference SpMV");
    let sim = GpuSim::new(DeviceProfile::a100());

    println!("{:<42} {:>10} {:>10}", "design", "GFLOPS", "pad ratio");

    // Machine-designable presets expressed as operator graphs.
    for (name, graph) in presets::all_presets() {
        let Ok(generated) = generate(&graph, &matrix, GeneratorOptions::default()) else {
            continue;
        };
        let result = sim
            .run_checked(&generated.kernel, x.as_slice(), &reference, 1e-3)
            .expect("preset kernel is correct");
        println!(
            "{:<42} {:>10.1} {:>10.2}",
            format!("graph:{name}"),
            result.report.gflops,
            generated.kernel.padding_ratio()
        );
    }

    // Artificial format baselines for comparison.
    for baseline in Baseline::pfs_set() {
        let kernel = baseline.build(&matrix);
        let result = sim
            .run(kernel.as_ref(), x.as_slice())
            .expect("baseline runs");
        println!(
            "{:<42} {:>10.1} {:>10}",
            format!("format:{}", baseline.name()),
            result.report.gflops,
            "-"
        );
    }
}
