//! Quickstart: tune one matrix and run the machine-designed SpMV.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alpha_matrix::{gen, DenseVector, MatrixStats};
use alphasparse::{AlphaSparse, DeviceProfile};

fn main() {
    // A mildly irregular matrix standing in for a SuiteSparse input.
    let matrix = gen::powerlaw(8_192, 8_192, 16, 2.0, 42);
    let stats = MatrixStats::from_csr(&matrix);
    println!(
        "matrix: {} x {}, {} non-zeros, avg row {:.1}, row variance {:.1} ({})",
        stats.rows,
        stats.cols,
        stats.nnz,
        stats.avg_row_len,
        stats.row_len_variance,
        if stats.is_irregular() {
            "irregular"
        } else {
            "regular"
        }
    );

    // Tune for an A100-like device.  Larger budgets explore more designs.
    let tuner = AlphaSparse::new(DeviceProfile::a100()).with_search_budget(80);
    let tuned = tuner.auto_tune(&matrix).expect("tuning succeeds");

    println!("\nwinning operator graph:\n{}", tuned.operator_graph());
    println!("\nmodelled performance: {}", tuned.report().summary());
    println!(
        "search: {} kernel evaluations, {:.2} modelled hours",
        tuned.search_stats().iterations,
        tuned.search_stats().search_hours
    );

    // Run the generated SpMV and sanity-check it against the reference.
    let x = DenseVector::random(matrix.cols(), 7);
    let y = tuned.spmv(x.as_slice()).expect("SpMV succeeds");
    let reference = matrix.spmv(x.as_slice()).expect("reference SpMV");
    let max_err = DenseVector::from_vec(y).max_abs_diff(&reference);
    println!("max |y - y_ref| = {max_err:.3e}");

    // The user-facing artifact: generated CUDA-like source.
    let source = tuned.source();
    let preview: String = source.lines().take(18).collect::<Vec<_>>().join("\n");
    println!("\ngenerated source (first lines):\n{preview}\n...");
}
