//! End-to-end Matrix Market pipeline: write an `.mtx` file, feed it to the
//! tuner exactly the way the paper's artifact does ("users only need to input
//! a Matrix Market file"), and save the generated CUDA-like kernel source
//! next to it.
//!
//! ```text
//! cargo run --release --example mtx_to_cuda [path/to/matrix.mtx]
//! ```

use alpha_matrix::{gen, mm};
use alphasparse::{AlphaSparse, DeviceProfile};
use std::path::PathBuf;

fn main() {
    let arg = std::env::args().nth(1);
    let mtx_path: PathBuf = match arg {
        Some(path) => PathBuf::from(path),
        None => {
            // No input supplied: synthesise a demonstration matrix and write
            // it to a temporary .mtx file first.
            let dir = std::env::temp_dir().join("alphasparse_demo");
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let path = dir.join("demo_circuit.mtx");
            let matrix = gen::rmat(4_096, 40_000, 99);
            let mut file = std::fs::File::create(&path).expect("create mtx");
            mm::write_matrix_market(&mut file, &matrix.to_coo()).expect("write mtx");
            println!("wrote demonstration matrix to {}", path.display());
            path
        }
    };

    let tuner = AlphaSparse::new(DeviceProfile::a100()).with_search_budget(60);
    let tuned = tuner.auto_tune_mtx(&mtx_path).expect("tuning succeeds");

    let stats = tuned.matrix_stats();
    println!(
        "tuned {}: {} rows, {} nnz -> {:.1} modelled GFLOPS",
        mtx_path.display(),
        stats.rows,
        stats.nnz,
        tuned.gflops()
    );
    println!("format arrays:");
    for (partition, name, compressed) in tuned.format().array_inventory() {
        println!(
            "  partition {partition}: {name}{}",
            if compressed {
                "  [compressed to a closed form]"
            } else {
                ""
            }
        );
    }

    let out_path = mtx_path.with_extension("alphasparse.cu");
    std::fs::write(&out_path, tuned.source()).expect("write generated source");
    println!("generated kernel written to {}", out_path.display());
}
