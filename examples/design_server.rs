//! Design server: batch-tune a 20-matrix synthetic fleet through a
//! persistent `DesignStore`, twice, and show the serving economics — the
//! first pass pays for the search, the second is answered from stored
//! designs with zero fresh kernel evaluations.
//!
//! ```text
//! cargo run --release --example design_server
//! ```

use alpha_matrix::gen::PatternFamily;
use alpha_serve::{DesignStore, TuneRequest, TuningService};
use alphasparse::{DeviceProfile, SearchConfig};
use std::time::Instant;

fn main() {
    let store_dir =
        std::env::temp_dir().join(format!("alphasparse_design_server_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    // A 20-matrix fleet mixing every synthetic pattern family at two sizes —
    // the stand-in for "the matrices our users keep sending us".
    let device = DeviceProfile::a100();
    let requests: Vec<TuneRequest> = (0..20)
        .map(|i| {
            let family = PatternFamily::ALL[i % PatternFamily::ALL.len()];
            let rows = if i % 2 == 0 { 2_048 } else { 8_192 };
            TuneRequest::new(family.generate(rows, 8, 7_000 + i as u64), device.clone())
        })
        .collect();
    println!(
        "fleet: {} matrices ({} pattern families), device {}",
        requests.len(),
        PatternFamily::ALL.len(),
        device.name
    );

    let config = SearchConfig {
        device: device.clone(),
        max_iterations: 40,
        mutations_per_seed: 3,
        ..SearchConfig::default()
    };

    let mut pass_stats: Vec<(f64, usize, usize)> = Vec::new();
    for pass in 1..=2 {
        // Each pass opens the store fresh, like a newly started server
        // process would.
        let store = DesignStore::open(&store_dir).expect("store opens");
        let service = TuningService::new(store, config.clone());

        // Two waves of 10, like traffic trickling in: the second wave's cold
        // searches warm-start from the winners the first wave just stored.
        let start = Instant::now();
        let mut served = Vec::new();
        for wave in requests.chunks(10) {
            served.extend(service.tune_batch(wave));
        }
        let wall = start.elapsed().as_secs_f64();

        let mut fresh = 0usize;
        let mut warm_started = 0usize;
        let mut total_gflops = 0.0;
        for result in &served {
            let tune = result.as_ref().expect("tuning succeeds");
            fresh += tune.fresh_evaluations;
            warm_started += tune.warm_started as usize;
            total_gflops += tune.tuned.gflops();
        }
        service.store().flush().expect("store flushes");

        let served_free = served
            .iter()
            .filter(|r| r.as_ref().unwrap().fresh_evaluations == 0)
            .count();
        println!("\npass {pass}: {wall:.2} s wall-clock");
        println!("  fresh kernel evaluations: {fresh}");
        println!(
            "  requests served entirely from the store: {served_free}/{}",
            served.len()
        );
        println!("  requests warm-started from similar matrices: {warm_started}");
        println!(
            "  mean modelled throughput of the fleet: {:.1} GFLOPS",
            total_gflops / served.len() as f64
        );
        let stats = service.store().stats();
        println!(
            "  store tier: {} memory hits, {} disk loads, {} cold starts",
            stats.memory_hits, stats.disk_loads, stats.cold_starts
        );
        pass_stats.push((wall, fresh, served_free));
    }

    let (cold_wall, cold_fresh, _) = pass_stats[0];
    let (warm_wall, warm_fresh, warm_free) = pass_stats[1];
    println!("\n== serving economics ==");
    println!(
        "  store hit rate on the second pass: {:.0}%  ({} of {} requests, {} -> {} fresh evaluations)",
        100.0 * warm_free as f64 / requests.len() as f64,
        warm_free,
        requests.len(),
        cold_fresh,
        warm_fresh,
    );
    println!(
        "  wall-clock: {cold_wall:.2} s cold -> {warm_wall:.2} s warm ({:.1}x faster)",
        cold_wall / warm_wall.max(1e-9)
    );
    println!("  (store directory: {})", store_dir.display());

    let _ = std::fs::remove_dir_all(&store_dir);
}
