//! netd: the tuning daemon end to end, in one process.
//!
//! Spawns an `alpha-net` daemon on a loopback port, then plays a realistic
//! serving day against it: **two concurrent clients** tune a 20-matrix
//! fleet (submitting over the wire, polling, running remote SpMV), and a
//! second wave re-submits the same fleet across *fresh connections* — every
//! one answered from the daemon's warm `DesignStore` with zero fresh kernel
//! evaluations.  Ends with a clean client-initiated shutdown.
//!
//! ```text
//! cargo run --release --example netd
//! cargo run --release --example netd -- --metrics-addr 127.0.0.1:9184 --fleet 4
//! ```
//!
//! With `--metrics-addr` the daemon also serves `GET /metrics` (Prometheus
//! text exposition) over plain HTTP on the same event loop, and the run
//! ends with a self-scrape of the endpoint.  `--fleet N` sizes the matrix
//! fleet (default 20; CI smoke runs use a small N).

use alpha_suite::matrix::gen::PatternFamily;
use alpha_suite::matrix::CsrMatrix;
use alpha_suite::net::{Client, NetServer, ServerConfig};
use alpha_suite::search::SearchConfig;
use alpha_suite::serve::{DesignStore, TuningService};
use std::time::{Duration, Instant};

const POLL: Duration = Duration::from_millis(5);
const DEADLINE: Duration = Duration::from_secs(600);

fn fleet(size: usize) -> Vec<CsrMatrix> {
    (0..size)
        .map(|i| {
            let family = PatternFamily::ALL[i % PatternFamily::ALL.len()];
            let rows = if i % 2 == 0 { 1_024 } else { 4_096 };
            family.generate(rows, 8, 9_000 + i as u64)
        })
        .collect()
}

/// One client's share of a wave: submit (with backoff), wait, verify a
/// remote SpMV, and report (jobs, fresh evaluations, warm starts).
fn drive_client(addr: std::net::SocketAddr, matrices: &[CsrMatrix]) -> (usize, u64, usize) {
    let mut client = Client::connect(addr).expect("client connects");
    let mut jobs = Vec::new();
    for matrix in matrices {
        let job = client
            .submit_tune_with_backoff(matrix, "A100", Duration::from_millis(10), DEADLINE)
            .expect("submission admitted");
        jobs.push(job);
    }
    let mut fresh = 0u64;
    let mut warm = 0usize;
    for (matrix, job) in matrices.iter().zip(&jobs) {
        let summary = client.wait_job(*job, POLL, DEADLINE).expect("job finishes");
        fresh += summary.fresh_evaluations;
        warm += summary.warm_started as usize;
        // Prove the wire kernel computes the real product.
        let x = vec![1.0; matrix.cols()];
        let y = client.spmv(*job, &x).expect("remote SpMV runs");
        let reference = matrix.spmv(&x).expect("reference SpMV");
        let error = alpha_suite::matrix::max_scaled_error(&y, reference.as_slice());
        assert!(error <= 1e-4, "remote SpMV drifted: {error}");
    }
    (jobs.len(), fresh, warm)
}

/// `--metrics-addr ADDR` and `--fleet N` from the command line; anything
/// else aborts with usage.
fn parse_args() -> (Option<std::net::SocketAddr>, usize) {
    let mut metrics_addr = None;
    let mut fleet_size = 20usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics-addr" => {
                let value = args.next().expect("--metrics-addr needs an ADDR value");
                metrics_addr = Some(value.parse().expect("--metrics-addr must be host:port"));
            }
            "--fleet" => {
                let value = args.next().expect("--fleet needs a count");
                fleet_size = value.parse().expect("--fleet must be a positive integer");
                assert!(fleet_size >= 2, "--fleet needs at least 2 matrices");
            }
            other => panic!("unknown argument {other:?} (try --metrics-addr ADDR, --fleet N)"),
        }
    }
    (metrics_addr, fleet_size)
}

/// One blocking HTTP/1.0 GET against the daemon's metrics lane, returning
/// the response body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("scraper connects");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("scrape request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("scrape response reads");
    assert!(
        response.starts_with("HTTP/1.0 200 OK\r\n"),
        "GET {path} failed: {response}"
    );
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default()
}

fn main() {
    let (metrics_addr, fleet_size) = parse_args();
    let store_dir = std::env::temp_dir().join(format!("alpha_netd_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let service = TuningService::new(
        DesignStore::open(&store_dir).expect("store opens"),
        SearchConfig {
            max_iterations: 30,
            mutations_per_seed: 3,
            ..SearchConfig::default()
        },
    );
    let config = ServerConfig {
        metrics_addr,
        ..ServerConfig::default()
    };
    let server = NetServer::spawn("127.0.0.1:0", service, config).expect("daemon binds");
    let addr = server.local_addr();
    println!("daemon listening on {addr}");
    if let Some(metrics) = server.metrics_addr() {
        println!("metrics endpoint on http://{metrics}/metrics");
    }

    let matrices = fleet(fleet_size);
    let (left, right) = matrices.split_at(matrices.len() / 2);
    println!(
        "fleet: {} matrices ({} pattern families), two concurrent clients\n",
        matrices.len(),
        PatternFamily::ALL.len()
    );

    for wave in 1..=2 {
        let start = Instant::now();
        let ((jobs_a, fresh_a, warm_a), (jobs_b, fresh_b, warm_b)) = std::thread::scope(|scope| {
            let a = scope.spawn(|| drive_client(addr, left));
            let b = scope.spawn(|| drive_client(addr, right));
            (a.join().expect("client A"), b.join().expect("client B"))
        });
        let wall = start.elapsed().as_secs_f64();
        let fresh = fresh_a + fresh_b;
        println!(
            "wave {wave}: {:>2} jobs in {wall:.2} s wall-clock",
            jobs_a + jobs_b
        );
        println!("  fresh kernel evaluations: {fresh}");
        println!("  warm-started searches:    {}", warm_a + warm_b);
        if wave == 1 {
            assert!(fresh > 0, "the cold wave must actually search");
        } else {
            assert_eq!(
                fresh, 0,
                "the second wave must be served entirely from the warm store"
            );
            println!("  -> 100% of the wave served from the warm store, across fresh connections");
        }
    }

    let mut client = Client::connect(addr).expect("stats client connects");
    let stats = client.store_stats().expect("stats frame");
    println!(
        "\ndaemon counters: {} submitted, {} completed, {} rejected (backpressure), {} GC'd",
        stats.jobs_submitted, stats.jobs_completed, stats.jobs_rejected, stats.jobs_gced
    );
    println!(
        "store tier: {} memory hits, {} disk loads, {} cold starts",
        stats.store_memory_hits, stats.store_disk_loads, stats.store_cold_starts
    );

    if let Some(metrics) = server.metrics_addr() {
        let body = http_get(metrics, "/metrics");
        let lines = body.lines().count();
        println!("\nself-scrape of http://{metrics}/metrics: {lines} samples, e.g.");
        for prefix in [
            "net_requests_total",
            "net_tune_exec_us_count",
            "serve_store_",
        ] {
            if let Some(line) = body.lines().find(|l| l.starts_with(prefix)) {
                println!("  {line}");
            }
        }
        assert!(
            body.lines().any(|l| l.starts_with("net_requests_total")),
            "scrape must carry the wire-level families"
        );
        // The flight recorder rides the same lane: its dump must already
        // hold the lifecycle of the traffic the waves produced.
        let dump = http_get(metrics, "/debug/flightrec");
        for kind in ["\"admitted\"", "\"queue_pop\"", "\"exec_end\"", "\"reply\""] {
            assert!(
                dump.contains(kind),
                "flight recorder saw no {kind} event after two waves"
            );
        }
        let events = dump.matches("\"seq\":").count();
        println!("flight recorder: {events} buffered events at http://{metrics}/debug/flightrec");
    }

    client.shutdown().expect("daemon acknowledges shutdown");
    server.join();
    println!("\nclean shutdown: accept loop, workers and connections all joined");

    let _ = std::fs::remove_dir_all(&store_dir);
}
