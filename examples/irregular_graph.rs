//! Irregular scale-free graph scenario: compare the machine-designed kernel
//! against the five state-of-the-art artificial formats and the Perfect
//! Format Selector on a graph-analytics-style matrix (the workload class the
//! paper's introduction motivates with web/social graphs).
//!
//! ```text
//! cargo run --release --example irregular_graph
//! ```

use alpha_baselines::{run_pfs, Baseline};
use alpha_gpu::GpuSim;
use alpha_matrix::{gen, DenseVector, MatrixStats};
use alphasparse::{AlphaSparse, DeviceProfile};

fn main() {
    // A scale-free adjacency-like matrix: heavy-tailed row lengths and
    // hot-spot columns.
    let matrix = gen::scale_free(16_384, 16_384, 12, 2024);
    let stats = MatrixStats::from_csr(&matrix);
    println!(
        "scale-free graph: {} rows, {} non-zeros, row-length variance {:.0}",
        stats.rows, stats.nnz, stats.row_len_variance
    );

    let device = DeviceProfile::a100();
    let sim = GpuSim::new(device.clone());
    let x = DenseVector::ones(matrix.cols());

    // Artificial formats.
    println!("\n{:<18} {:>10}", "format", "GFLOPS");
    for baseline in Baseline::figure9_set() {
        let kernel = baseline.build(&matrix);
        let report = sim
            .run(kernel.as_ref(), x.as_slice())
            .expect("baseline runs")
            .report;
        println!("{:<18} {:>10.1}", baseline.name(), report.gflops);
    }

    // The Perfect Format Selector over the full candidate set.
    let pfs = run_pfs(&sim, &matrix, x.as_slice(), &Baseline::pfs_set()).expect("PFS runs");
    println!(
        "{:<18} {:>10.1}   (selected {})",
        "PFS",
        pfs.best_gflops(),
        pfs.best.name()
    );

    // AlphaSparse.
    let tuned = AlphaSparse::new(device)
        .with_search_budget(100)
        .auto_tune(&matrix)
        .expect("tuning succeeds");
    println!("{:<18} {:>10.1}", "AlphaSparse", tuned.gflops());
    println!(
        "\nspeedup over PFS: {:.2}x   ({} kernel evaluations)",
        tuned.gflops() / pfs.best_gflops(),
        tuned.search_stats().iterations
    );
    println!("\nwinning design:\n{}", tuned.operator_graph());
}
