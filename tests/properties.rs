//! Property-style tests over the core invariants: every valid operator graph
//! generates a kernel that computes the same `y = A·x` as the reference CSR
//! implementation, format compression never changes results, and the format
//! conversions of the baseline kernels preserve the matrix.
//!
//! The cases are driven by a deterministic xorshift generator rather than
//! proptest (unavailable offline); each property is checked over a fixed
//! spread of random matrix shapes, densities and input vectors.

use alpha_baselines::Baseline;
use alpha_codegen::{generate, GeneratorOptions};
use alpha_gpu::{DeviceProfile, GpuSim, SpmvKernel};
use alpha_graph::presets;
use alpha_matrix::{CooMatrix, CsrMatrix, DenseVector};

const CASES: u64 = 24;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A small random sparse matrix: dimensions in [2, 60), up to 300 entries.
fn arb_matrix(case: u64) -> CsrMatrix {
    let mut rng = 0x5EED_0000 + case * 0x9E37_79B9;
    let rows = 2 + (xorshift(&mut rng) % 58) as usize;
    let cols = 2 + (xorshift(&mut rng) % 58) as usize;
    let entries = 1 + (xorshift(&mut rng) % 299) as usize;
    let mut coo = CooMatrix::new(rows, cols);
    for _ in 0..entries {
        let r = (xorshift(&mut rng) % rows as u64) as usize;
        let c = (xorshift(&mut rng) % cols as u64) as usize;
        let v = ((xorshift(&mut rng) % 2000) as f32 - 1000.0) / 500.0;
        coo.push(r, c, v);
    }
    // Guarantee at least one entry so the designer accepts the matrix.
    coo.push(0, 0, 1.0);
    CsrMatrix::from_coo(&coo)
}

#[test]
fn generated_kernels_match_reference_spmv() {
    let sim = GpuSim::new(DeviceProfile::test_profile());
    for case in 0..CASES {
        let matrix = arb_matrix(case);
        let x = DenseVector::random(matrix.cols(), case ^ 0xF00D);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        for graph in [
            presets::csr_scalar(),
            presets::sell_like(),
            presets::csr5_like(8),
        ] {
            if let Ok(generated) = generate(&graph, &matrix, GeneratorOptions::default()) {
                let result = sim.run(&generated.kernel, x.as_slice()).unwrap();
                assert!(
                    DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
                    "case {case}: graph produced incorrect results"
                );
            }
        }
    }
}

#[test]
fn compression_never_changes_results() {
    let sim = GpuSim::new(DeviceProfile::test_profile());
    for case in 0..CASES {
        let matrix = arb_matrix(case);
        let x = DenseVector::random(matrix.cols(), case ^ 0xBEEF);
        let graph = presets::sell_sigma_like(16);
        let on = generate(
            &graph,
            &matrix,
            GeneratorOptions {
                model_compression: true,
            },
        );
        let off = generate(
            &graph,
            &matrix,
            GeneratorOptions {
                model_compression: false,
            },
        );
        if let (Ok(on), Ok(off)) = (on, off) {
            let y_on = sim.run(&on.kernel, x.as_slice()).unwrap().y;
            let y_off = sim.run(&off.kernel, x.as_slice()).unwrap().y;
            assert!(
                DenseVector::from_vec(y_on).approx_eq(&y_off, 1e-4),
                "case {case}: compression changed results"
            );
            assert!(
                on.kernel.format_bytes() <= off.kernel.format_bytes(),
                "case {case}: compression grew the format"
            );
        }
    }
}

#[test]
fn baseline_conversions_preserve_the_matrix() {
    let sim = GpuSim::new(DeviceProfile::test_profile());
    for case in 0..CASES {
        let matrix = arb_matrix(case);
        let x = DenseVector::random(matrix.cols(), case ^ 0xCAFE);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        for baseline in [
            Baseline::Ell,
            Baseline::Hyb,
            Baseline::Csr5,
            Baseline::Merge,
        ] {
            let kernel = baseline.build(&matrix);
            let result = sim.run(kernel.as_ref(), x.as_slice()).unwrap();
            assert!(
                DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
                "case {case}: {} conversion lost information",
                baseline.name()
            );
        }
    }
}

#[test]
fn corpus_entries_are_all_tunable_by_presets() {
    // Every corpus entry can at least be expressed and executed with the
    // preset designs (a prerequisite for the evaluation sweeps).
    let sim = GpuSim::new(DeviceProfile::test_profile());
    for entry in alpha_matrix::suite::corpus(&alpha_matrix::suite::CorpusConfig::tiny()) {
        let x = DenseVector::ones(entry.matrix.cols());
        let expected = entry.matrix.spmv(x.as_slice()).unwrap();
        let generated = generate(
            &presets::sell_like(),
            &entry.matrix,
            GeneratorOptions::default(),
        )
        .unwrap();
        let result = sim.run(&generated.kernel, x.as_slice()).unwrap();
        assert!(
            DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
            "wrong result on corpus entry {}",
            entry.name
        );
    }
}
