//! Property-based tests over the core invariants: every valid operator graph
//! generates a kernel that computes the same `y = A·x` as the reference CSR
//! implementation, format compression never changes results, and the format
//! conversions of the baseline kernels preserve the matrix.

use alpha_baselines::Baseline;
use alpha_codegen::{generate, GeneratorOptions};
use alpha_gpu::{DeviceProfile, GpuSim, SpmvKernel};
use alpha_graph::presets;
use alpha_matrix::{CooMatrix, CsrMatrix, DenseVector};
use proptest::prelude::*;

/// Strategy: a small random sparse matrix described by (rows, cols, entries).
fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..60, 2usize..60, 1usize..300, any::<u64>()).prop_map(|(rows, cols, entries, seed)| {
        let mut rng = seed;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut coo = CooMatrix::new(rows, cols);
        for _ in 0..entries {
            let r = (next() % rows as u64) as usize;
            let c = (next() % cols as u64) as usize;
            let v = ((next() % 2000) as f32 - 1000.0) / 500.0;
            coo.push(r, c, v);
        }
        // Guarantee at least one entry so the designer accepts the matrix.
        coo.push(0, 0, 1.0);
        CsrMatrix::from_coo(&coo)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_kernels_match_reference_spmv(matrix in arb_matrix(), seed in any::<u64>()) {
        let x = DenseVector::random(matrix.cols(), seed);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        let sim = GpuSim::new(DeviceProfile::test_profile());
        for graph in [presets::csr_scalar(), presets::sell_like(), presets::csr5_like(8)] {
            if let Ok(generated) = generate(&graph, &matrix, GeneratorOptions::default()) {
                let result = sim.run(&generated.kernel, x.as_slice()).unwrap();
                prop_assert!(
                    DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
                    "graph produced incorrect results"
                );
            }
        }
    }

    #[test]
    fn compression_never_changes_results(matrix in arb_matrix(), seed in any::<u64>()) {
        let x = DenseVector::random(matrix.cols(), seed);
        let sim = GpuSim::new(DeviceProfile::test_profile());
        let graph = presets::sell_sigma_like(16);
        let on = generate(&graph, &matrix, GeneratorOptions { model_compression: true });
        let off = generate(&graph, &matrix, GeneratorOptions { model_compression: false });
        if let (Ok(on), Ok(off)) = (on, off) {
            let y_on = sim.run(&on.kernel, x.as_slice()).unwrap().y;
            let y_off = sim.run(&off.kernel, x.as_slice()).unwrap().y;
            prop_assert!(DenseVector::from_vec(y_on).approx_eq(&y_off, 1e-4));
            prop_assert!(on.kernel.format_bytes() <= off.kernel.format_bytes());
        }
    }

    #[test]
    fn baseline_conversions_preserve_the_matrix(matrix in arb_matrix(), seed in any::<u64>()) {
        let x = DenseVector::random(matrix.cols(), seed);
        let expected = matrix.spmv(x.as_slice()).unwrap();
        let sim = GpuSim::new(DeviceProfile::test_profile());
        for baseline in [Baseline::Ell, Baseline::Hyb, Baseline::Csr5, Baseline::Merge] {
            let kernel = baseline.build(&matrix);
            let result = sim.run(kernel.as_ref(), x.as_slice()).unwrap();
            prop_assert!(
                DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
                "{} conversion lost information", baseline.name()
            );
        }
    }
}

#[test]
fn corpus_entries_are_all_tunable_by_presets() {
    // Every corpus entry can at least be expressed and executed with the
    // preset designs (a prerequisite for the evaluation sweeps).
    let sim = GpuSim::new(DeviceProfile::test_profile());
    for entry in alpha_matrix::suite::corpus(&alpha_matrix::suite::CorpusConfig::tiny()) {
        let x = DenseVector::ones(entry.matrix.cols());
        let expected = entry.matrix.spmv(x.as_slice()).unwrap();
        let generated =
            generate(&presets::sell_like(), &entry.matrix, GeneratorOptions::default()).unwrap();
        let result = sim.run(&generated.kernel, x.as_slice()).unwrap();
        assert!(
            DenseVector::from_vec(result.y.clone()).approx_eq(&expected, 1e-3),
            "wrong result on corpus entry {}",
            entry.name
        );
    }
}
