//! Differential correctness suite of the native CPU backend.
//!
//! Three implementations compute `y = A·x` for every machine-designed
//! format: the reference CSR loop (`CsrMatrix::spmv`), the `alpha-gpu`
//! functional simulator interpreting the generated kernel, and `alpha-cpu`
//! executing it natively.  This suite runs property-style seeded sweeps over
//! the generator matrix suite and checks all three against each other with
//! the shared floating-point yardstick `alpha_matrix::max_scaled_error`
//! (different reduction orders make bitwise equality too strict).

use alpha_codegen::{generate, GeneratorOptions};
use alpha_cpu::NativeKernel;
use alpha_gpu::{DeviceProfile, GpuSim};
use alpha_matrix::{gen, max_scaled_error, DenseVector};
use alphasparse::{AlphaSparse, TimingHarness};

/// Relative-or-absolute tolerance for f32 SpMV reductions.
const TOL: f32 = 1e-3;

#[test]
fn every_preset_runs_natively_and_agrees_with_reference_and_simulator() {
    let sim = GpuSim::new(DeviceProfile::test_profile());
    for family in gen::PatternFamily::ALL {
        for (size, seed) in [(128usize, 1u64), (256, 2), (200, 3)] {
            let matrix = family.generate(size, 6, seed);
            let x = DenseVector::random(matrix.cols(), seed ^ 0xC0FFEE);
            let reference = matrix.spmv(x.as_slice()).unwrap();
            for (name, graph) in alpha_graph::presets::all_presets() {
                let generated = generate(&graph, &matrix, GeneratorOptions::default())
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", family.name()));
                let native = NativeKernel::new(generated.kernel.metadata(), &generated.format);
                let y_native = native.run(x.as_slice(), 4).expect("native run succeeds");
                let y_sim = sim
                    .run(&generated.kernel, x.as_slice())
                    .expect("simulation succeeds")
                    .y;
                assert!(
                    max_scaled_error(&y_native, &reference) <= TOL,
                    "{name} on {}_{size}_{seed}: native diverged from reference CSR",
                    family.name()
                );
                assert!(
                    max_scaled_error(&y_native, &y_sim) <= TOL,
                    "{name} on {}_{size}_{seed}: native diverged from the GpuSim interpreter",
                    family.name()
                );
            }
        }
    }
}

#[test]
fn native_auto_tune_is_correct_on_twenty_suite_matrices() {
    // The acceptance property: a full `auto_tune` with the NativeEvaluator —
    // search, caching, codegen and native execution end to end — returns a
    // design whose native output matches reference CSR within tolerance, on
    // at least 20 matrices spanning every generator family.
    let mut checked = 0usize;
    for family in gen::PatternFamily::ALL {
        for seed in [11u64, 22, 33, 44] {
            let size = 160 + 32 * (seed as usize % 4);
            let matrix = family.generate(size, 6, seed);
            let tuner = AlphaSparse::new(DeviceProfile::a100())
                .with_search_budget(8)
                .with_native_execution_harness(TimingHarness::quick(), 1);
            let tuned = tuner
                .auto_tune(&matrix)
                .unwrap_or_else(|e| panic!("{}_{seed}: tuning failed: {e}", family.name()));
            assert!(tuned.evaluator().is_native());
            assert!(tuned.report().time_us > 0.0, "winner carries measured time");

            let x = DenseVector::random(matrix.cols(), seed ^ 0xA11A);
            let reference = matrix.spmv(x.as_slice()).unwrap();
            let y_native = tuned.run(x.as_slice()).expect("native run succeeds");
            assert!(
                max_scaled_error(&y_native, &reference) <= TOL,
                "{}_{seed}: tuned native output diverged from reference",
                family.name()
            );
            // The same winner interpreted by the simulator agrees too.
            let y_sim = tuned.spmv(x.as_slice()).expect("simulated run succeeds");
            assert!(
                max_scaled_error(&y_native, &y_sim) <= TOL,
                "{}_{seed}: native and simulated outputs diverged",
                family.name()
            );
            checked += 1;
        }
    }
    assert!(checked >= 20, "suite must cover at least 20 matrices");
}

#[test]
fn native_and_baseline_kernels_share_the_tolerance_yardstick() {
    // The helper itself: zero for identical vectors, scale-aware otherwise.
    assert_eq!(max_scaled_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    let err = max_scaled_error(&[1000.0], &[1001.0]);
    assert!(err > 0.0 && err < 2e-3, "relative for large magnitudes");
    assert!(
        max_scaled_error(&[0.0], &[0.5]) == 0.5,
        "absolute near zero"
    );

    // And its use across backends: a baseline and a generated design measured
    // against the same reference.
    let matrix = gen::powerlaw(256, 256, 8, 2.0, 9);
    let x = DenseVector::random(256, 7);
    let reference = matrix.spmv(x.as_slice()).unwrap();
    let csr =
        alpha_baselines::NativeBaselineKernel::new(alpha_baselines::Baseline::CsrScalar, &matrix)
            .unwrap();
    assert!(max_scaled_error(&csr.run(x.as_slice(), 2).unwrap(), &reference) <= TOL);
    let generated = generate(
        &alpha_graph::presets::sell_like(),
        &matrix,
        GeneratorOptions::default(),
    )
    .unwrap();
    let native = NativeKernel::new(generated.kernel.metadata(), &generated.format);
    assert!(max_scaled_error(&native.run(x.as_slice(), 2).unwrap(), &reference) <= TOL);
}
