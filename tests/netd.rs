//! Cross-crate integration test of the networked serving tier — the
//! acceptance path of the alpha-net PR: a daemon on an ephemeral port, two
//! concurrent clients tuning *overlapping* fleets over the wire, a second
//! wave served entirely from the warm store, and a remote SpMV that matches
//! the local `TunedSpmv::run` result.

use alpha_suite::alphasparse::AlphaSparse;
use alpha_suite::matrix::{gen, max_scaled_error, CsrMatrix};
use alpha_suite::net::{Client, JobSummary, NetServer, ServerConfig};
use alpha_suite::search::SearchConfig;
use alpha_suite::serve::{DesignStore, TuningService};
use std::net::SocketAddr;
use std::time::Duration;

const POLL: Duration = Duration::from_millis(5);
const DEADLINE: Duration = Duration::from_secs(300);

fn tuning_config() -> SearchConfig {
    SearchConfig {
        max_iterations: 12,
        mutations_per_seed: 2,
        ..SearchConfig::default()
    }
}

/// Submits every matrix, waits for all jobs, returns their summaries.
fn tune_fleet(addr: SocketAddr, matrices: &[CsrMatrix]) -> Vec<JobSummary> {
    let mut client = Client::connect(addr).expect("client connects");
    let jobs: Vec<u64> = matrices
        .iter()
        .map(|matrix| {
            client
                .submit_tune_with_backoff(matrix, "A100", Duration::from_millis(5), DEADLINE)
                .expect("submission admitted")
        })
        .collect();
    jobs.into_iter()
        .map(|job| client.wait_job(job, POLL, DEADLINE).expect("job finishes"))
        .collect()
}

#[test]
fn remote_tuning_end_to_end() {
    let store_dir = std::env::temp_dir().join(format!("alpha_suite_netd_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let service = TuningService::new(
        DesignStore::open(&store_dir).expect("store opens"),
        tuning_config(),
    );
    let server = NetServer::spawn("127.0.0.1:0", service, ServerConfig::default())
        .expect("daemon binds an ephemeral port");
    let addr = server.local_addr();

    // Two overlapping fleets: matrices 2..6 are submitted by BOTH clients.
    let matrices: Vec<CsrMatrix> = (0..8)
        .map(|i| {
            let family = gen::PatternFamily::ALL[i % gen::PatternFamily::ALL.len()];
            family.generate(512, 6, 3_000 + i as u64)
        })
        .collect();
    let fleet_a = &matrices[..6];
    let fleet_b = &matrices[2..];

    // Wave 1: two concurrent clients, cold store.
    let (first_a, first_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| tune_fleet(addr, fleet_a));
        let b = scope.spawn(|| tune_fleet(addr, fleet_b));
        (a.join().expect("client A"), b.join().expect("client B"))
    });
    let cold_fresh: u64 = first_a
        .iter()
        .chain(&first_b)
        .map(|s| s.fresh_evaluations)
        .sum();
    assert!(cold_fresh > 0, "the cold wave must actually search");

    // Wave 2: the same overlapping fleets from two NEW concurrent
    // connections.  Every job must be served from the warm store — zero
    // fresh simulator evaluations across the whole wave.
    let (second_a, second_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| tune_fleet(addr, fleet_a));
        let b = scope.spawn(|| tune_fleet(addr, fleet_b));
        (a.join().expect("client A"), b.join().expect("client B"))
    });
    for summary in second_a.iter().chain(&second_b) {
        assert_eq!(
            summary.fresh_evaluations, 0,
            "warm wave must be store-served (graph {})",
            summary.operator_graph
        );
    }
    // The warm wave reproduces the cold wave's winners.
    for (cold, warm) in first_a.iter().zip(&second_a) {
        assert_eq!(cold.operator_graph, warm.operator_graph);
        assert_eq!(cold.gflops, warm.gflops);
    }

    // Remote SpMV matches the LOCAL TunedSpmv::run result: tune the same
    // matrix with the same config in-process and compare products.
    let probe = &matrices[0];
    let mut client = Client::connect(addr).expect("probe client connects");
    let job = client
        .submit_tune_with_backoff(probe, "A100", Duration::from_millis(5), DEADLINE)
        .expect("probe admitted");
    client
        .wait_job(job, POLL, DEADLINE)
        .expect("probe finishes");
    let x: Vec<f32> = (0..probe.cols())
        .map(|i| ((i % 11) as f32 - 5.0) / 3.0)
        .collect();
    let remote_y = client.spmv(job, &x).expect("remote SpMV runs");

    let local = AlphaSparse::with_config(tuning_config())
        .auto_tune(probe)
        .expect("local tuning succeeds");
    let local_y = local.run(&x).expect("local native SpMV runs");
    let error = max_scaled_error(&remote_y, &local_y);
    assert!(
        error <= 1e-4,
        "remote SpMV must match local TunedSpmv::run (max scaled error {error})"
    );

    // Clean shutdown: daemon acknowledges, every thread joins.
    client.shutdown().expect("daemon acknowledges shutdown");
    server.join();
    let _ = std::fs::remove_dir_all(&store_dir);
}
