//! Cross-crate integration tests: the full pipeline from matrix generation
//! through the Designer, the Format & Kernel Generator, the simulator and the
//! Search Engine, checked against the paper's qualitative claims at small
//! scale.

use alpha_baselines::{run_pfs, Baseline};
use alpha_gpu::GpuSim;
use alpha_matrix::{gen, suite, DenseVector, MatrixStats};
use alphasparse::{AlphaSparse, DeviceProfile, SearchConfig};

fn tuner(budget: usize) -> AlphaSparse {
    AlphaSparse::with_config(SearchConfig {
        device: DeviceProfile::a100(),
        max_iterations: budget,
        mutations_per_seed: 2,
        ..SearchConfig::default()
    })
}

#[test]
fn alphasparse_matches_or_beats_pfs_on_an_irregular_matrix() {
    // The headline claim (Figures 9-11) at reduced scale: the machine-designed
    // kernel is at least as fast as the best artificial format.
    let matrix = gen::powerlaw(4_096, 4_096, 12, 1.9, 31);
    let x = DenseVector::ones(matrix.cols());
    let sim = GpuSim::new(DeviceProfile::a100());
    let pfs = run_pfs(&sim, &matrix, x.as_slice(), &Baseline::pfs_set()).expect("PFS runs");
    let tuned = tuner(80).auto_tune(&matrix).expect("tuning succeeds");
    assert!(
        tuned.gflops() >= 0.95 * pfs.best_gflops(),
        "AlphaSparse ({:.1}) should match or beat PFS ({:.1}, {})",
        tuned.gflops(),
        pfs.best_gflops(),
        pfs.best.name()
    );
}

#[test]
fn tuned_kernels_are_correct_on_both_devices() {
    let matrix = gen::rmat(2_048, 16_384, 5);
    let x = DenseVector::random(matrix.cols(), 17);
    let expected = matrix.spmv(x.as_slice()).unwrap();
    for device in [DeviceProfile::a100(), DeviceProfile::rtx2080()] {
        let tuned = AlphaSparse::new(device.clone())
            .with_search_budget(20)
            .auto_tune(&matrix)
            .expect("tuning succeeds");
        let y = tuned.spmv(x.as_slice()).expect("SpMV runs");
        assert!(
            DenseVector::from_vec(y).approx_eq(&expected, 1e-3),
            "wrong result on {}",
            device.name
        );
    }
}

#[test]
fn named_suite_matrices_tune_successfully() {
    // A slice of the named corpus (Table III stand-ins) goes through the full
    // pipeline.
    for name in ["pdb1HYS", "scfxm1-2r", "ASIC_680k"] {
        let named = suite::named_matrix(name, suite::SuiteScale(1.0 / 256.0)).expect("known name");
        let stats = MatrixStats::from_csr(&named.matrix);
        assert!(stats.nnz > 0);
        let tuned = tuner(15).auto_tune(&named.matrix).expect("tuning succeeds");
        assert!(
            tuned.gflops() > 0.0,
            "{name} produced no performance estimate"
        );
    }
}

#[test]
fn search_statistics_reflect_pruning_and_irregularity() {
    // Figure 13's trend at small scale: irregular matrices need more search
    // iterations than regular ones under the same budget and annealing.
    let regular = gen::uniform_random(2_048, 2_048, 16, 3);
    let irregular = gen::powerlaw(2_048, 2_048, 16, 1.8, 3);
    let regular_outcome = tuner(500).auto_tune(&regular).expect("regular tuning");
    let irregular_outcome = tuner(500).auto_tune(&irregular).expect("irregular tuning");
    assert!(
        irregular_outcome.search_stats().iterations >= regular_outcome.search_stats().iterations,
        "irregular search ({}) should need at least as many iterations as regular ({})",
        irregular_outcome.search_stats().iterations,
        regular_outcome.search_stats().iterations
    );
}

#[test]
fn emitted_source_documents_the_winning_design() {
    let matrix = gen::banded(4_096, 8, 3);
    let tuned = tuner(25).auto_tune(&matrix).expect("tuning succeeds");
    let source = tuned.source();
    assert!(source.contains("__global__"));
    assert!(source.contains("COMPRESS"));
    assert!(source.contains("alphasparse_spmv"));
}
