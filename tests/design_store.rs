//! Cross-crate integration tests of the persistence + serving layer: the
//! acceptance path of PR 2 — tune a fleet through a `TuningService` backed
//! by a `DesignStore`, restart, and be served entirely from stored designs.

use alpha_suite::gpu::DeviceProfile;
use alpha_suite::matrix::gen;
use alpha_suite::search::SearchConfig;
use alpha_suite::serve::{DesignStore, TuneRequest, TuningService};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alpha_suite_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fleet(count: usize) -> Vec<TuneRequest> {
    (0..count)
        .map(|i| {
            let family = gen::PatternFamily::ALL[i % gen::PatternFamily::ALL.len()];
            TuneRequest::new(
                family.generate(512, 6, 400 + i as u64),
                DeviceProfile::a100(),
            )
        })
        .collect()
}

#[test]
fn fleet_tuned_twice_is_free_the_second_time() {
    // The headline acceptance criterion: tuning the same matrix fleet twice
    // through a TuningService with a DesignStore performs ZERO fresh
    // simulator evaluations on the second pass — across a simulated process
    // restart (flush + reopen), with the winners intact.
    let dir = temp_dir("acceptance");
    let config = SearchConfig {
        max_iterations: 15,
        mutations_per_seed: 2,
        ..SearchConfig::default()
    };
    let requests = fleet(6);

    let first: Vec<(String, f64, usize)> = {
        let service = TuningService::new(DesignStore::open(&dir).unwrap(), config.clone());
        let served = service.tune_batch(&requests);
        service.store().flush().unwrap();
        served
            .into_iter()
            .map(|r| {
                let tune = r.expect("cold tuning succeeds");
                (
                    tune.tuned.operator_graph(),
                    tune.tuned.gflops(),
                    tune.fresh_evaluations,
                )
            })
            .collect()
    };
    assert!(
        first.iter().map(|(_, _, fresh)| fresh).sum::<usize>() > 0,
        "cold pass must pay for the search"
    );

    // "Process restart": a brand-new store instance over the same directory.
    let service = TuningService::new(DesignStore::open(&dir).unwrap(), config);
    let second = service.tune_batch(&requests);
    for ((graph, gflops, _), result) in first.iter().zip(&second) {
        let tune = result.as_ref().expect("warm tuning succeeds");
        assert_eq!(
            tune.fresh_evaluations, 0,
            "second pass must perform zero fresh simulator evaluations"
        );
        assert_eq!(&tune.tuned.operator_graph(), graph, "same winning design");
        assert_eq!(tune.tuned.gflops(), *gflops, "same modelled performance");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_designs_compute_correct_spmv() {
    // A ServedTune is a ready-to-run handle: the kernel it wraps must
    // reproduce the reference SpMV, warm or cold.
    let dir = temp_dir("correctness");
    let config = SearchConfig {
        max_iterations: 10,
        mutations_per_seed: 2,
        ..SearchConfig::default()
    };
    let requests = fleet(3);
    let service = TuningService::new(DesignStore::open(&dir).unwrap(), config);
    for pass in 0..2 {
        let served = service.tune_batch(&requests);
        for (request, result) in requests.iter().zip(&served) {
            let tune = result.as_ref().expect("tuning succeeds");
            let x = vec![1.0; request.matrix.cols()];
            let y = tune.tuned.spmv(&x).expect("SpMV runs");
            let reference = request.matrix.spmv(&x).expect("reference runs");
            let max_err = y
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs() as f64)
                .fold(0.0f64, f64::max);
            assert!(max_err < 1e-3, "pass {pass}: max error {max_err}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn core_store_file_and_serve_store_interoperate_via_merge() {
    // AlphaSparse::with_store writes a single cache file; a DesignStore
    // keeps one file per context.  Both speak the same ACDS codec, so a
    // store-wide cache can absorb a with_store file through merge_from.
    use alpha_suite::alphasparse::AlphaSparse;
    use alpha_suite::search::DesignCache;

    let dir = temp_dir("interop");
    let file = dir.join("solo.acds");
    let matrix = gen::powerlaw(512, 512, 6, 2.0, 77);
    AlphaSparse::new(DeviceProfile::a100())
        .with_search_budget(10)
        .with_store(&file)
        .unwrap()
        .auto_tune(&matrix)
        .unwrap();

    let solo = DesignCache::load_from_file(&file).unwrap();
    assert!(!solo.is_empty());
    assert_eq!(solo.winners().len(), 1);

    let shared = DesignCache::new();
    let added = shared.merge_from(&solo);
    assert_eq!(added, solo.len());
    assert_eq!(shared.winners().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
